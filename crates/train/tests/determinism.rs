//! Parallel-vs-sequential determinism: the same cohort personalized with
//! 1, 2 and 8 workers must produce bit-identical model weights and
//! bit-identical audit verdicts. This is the contract that makes the
//! trainer pool safe to scale — worker count is a pure throughput knob,
//! never a behaviour knob.

use pelican::PersonalizationConfig;
use pelican_mobility::{CampusConfig, DatasetBuilder, MobilityDataset, Scale, SpatialLevel};
use pelican_nn::{ModelEnvelope, SequenceModel, TrainConfig};
use pelican_serve::{RegistryConfig, ShardedRegistry};
use pelican_train::{
    cohort_jobs, simulate_fleet_network, AuditConfig, FleetTrainer, NetworkConfig, PipelineConfig,
    TrainJob, TrainReport,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setting() -> (SequenceModel, MobilityDataset, Vec<TrainJob>) {
    let dataset =
        DatasetBuilder::new(CampusConfig::for_scale(Scale::Tiny), 31).build(SpatialLevel::Building);
    let mut rng = StdRng::seed_from_u64(31);
    let general =
        SequenceModel::general_lstm(dataset.space.dim(), 16, dataset.n_locations(), 0.1, &mut rng);
    let n = dataset.users.len();
    let jobs = cohort_jobs(&dataset, n.saturating_sub(4)..n, 0.8);
    assert!(jobs.len() >= 2, "need a real cohort to exercise stealing");
    (general, dataset, jobs)
}

fn config(workers: usize) -> PipelineConfig {
    PipelineConfig {
        workers,
        base_seed: 77,
        personalization: PersonalizationConfig {
            train: TrainConfig { epochs: 3, ..TrainConfig::default() },
            hidden_dim: 16,
            ..PersonalizationConfig::default()
        },
        audit: AuditConfig { max_instances: 3, ..AuditConfig::default() },
        ..PipelineConfig::default()
    }
}

/// Runs the pipeline and returns (report, per-user published envelope
/// bytes in job order).
fn run(
    workers: usize,
    general: &SequenceModel,
    dataset: &MobilityDataset,
    jobs: &[TrainJob],
) -> (TrainReport, Vec<Vec<u8>>) {
    run_cohort(workers, 0, general, dataset, jobs)
}

/// Same, with a lockstep cohort size.
fn run_cohort(
    workers: usize,
    cohort: usize,
    general: &SequenceModel,
    dataset: &MobilityDataset,
    jobs: &[TrainJob],
) -> (TrainReport, Vec<Vec<u8>>) {
    let registry = ShardedRegistry::new(general.clone(), RegistryConfig::default());
    let config = PipelineConfig { cohort, ..config(workers) };
    let report = FleetTrainer::new(config).run(general, &dataset.space, jobs, &registry);
    let envelopes = jobs
        .iter()
        .map(|job| {
            let (model, _) = registry.get(job.user_id).expect("published envelope decodes");
            ModelEnvelope::encode(&model).as_bytes().to_vec()
        })
        .collect();
    (report, envelopes)
}

#[test]
fn one_two_and_eight_workers_publish_bit_identical_models() {
    let (general, dataset, jobs) = setting();
    let (sequential, sequential_envelopes) = run(1, &general, &dataset, &jobs);

    for workers in [2usize, 8] {
        let (parallel, parallel_envelopes) = run(workers, &general, &dataset, &jobs);
        assert_eq!(
            sequential_envelopes, parallel_envelopes,
            "{workers}-worker published weights must be bit-identical to sequential"
        );
        for (seq, par) in sequential.outcomes.iter().zip(&parallel.outcomes) {
            assert_eq!(seq.user_id, par.user_id, "outcomes stay in job order");
            assert_eq!(
                seq.gate, par.gate,
                "audit verdict for user {} must not depend on worker count",
                seq.user_id
            );
            assert_eq!(seq.fit.epoch_losses, par.fit.epoch_losses);
        }
    }
}

#[test]
fn lockstep_cohorts_are_bit_identical_for_any_width_and_cohort_size() {
    // The 1/2/8-worker determinism contract, re-run with lockstep cohorts
    // enabled: neither the pool width nor the cohort size may change a
    // single published bit, a fit report, an audit verdict, or a simulated
    // device duration (the input every network replay consumes).
    let (general, dataset, jobs) = setting();
    let (sequential, sequential_envelopes) = run(1, &general, &dataset, &jobs);

    for workers in [1usize, 2, 8] {
        for cohort in [2usize, 8] {
            let (lockstep, lockstep_envelopes) =
                run_cohort(workers, cohort, &general, &dataset, &jobs);
            assert_eq!(
                sequential_envelopes, lockstep_envelopes,
                "{workers}-worker cohort-{cohort} weights must be bit-identical to sequential"
            );
            for (seq, lock) in sequential.outcomes.iter().zip(&lockstep.outcomes) {
                assert_eq!(seq.user_id, lock.user_id, "outcomes stay in job order");
                assert_eq!(seq.gate, lock.gate);
                assert_eq!(seq.fit, lock.fit);
                assert_eq!(
                    seq.train_simulated, lock.train_simulated,
                    "simulated training duration for user {} must not depend on the cohort",
                    seq.user_id
                );
                assert_eq!(seq.audit_simulated, lock.audit_simulated);
            }
        }
    }
}

#[test]
fn network_replay_fingerprint_is_cohort_invariant() {
    // The report a lockstep run produces replays through the
    // discrete-event network simulator to the exact same timeline as the
    // per-job run: every download, upload and publication instant derives
    // from the per-job simulated durations, which lockstep preserves
    // bit-for-bit.
    let (general, dataset, jobs) = setting();
    let general_bytes = ModelEnvelope::encode(&general).len() as u64;
    let net = NetworkConfig::default();
    let replay = |workers: usize, cohort: usize| {
        let (report, _) = run_cohort(workers, cohort, &general, &dataset, &jobs);
        simulate_fleet_network(&report, general_bytes, &net).fingerprint()
    };
    let sequential = replay(1, 0);
    for (workers, cohort) in [(1, 2), (2, 8), (8, 3)] {
        assert_eq!(
            replay(workers, cohort),
            sequential,
            "network timeline moved at workers {workers}, cohort {cohort}"
        );
    }
}

#[test]
fn distinct_users_get_distinct_models() {
    // The per-user seed derivation must actually separate users: two
    // users with the same general model and method still train different
    // parameters (different data *and* different init seeds).
    let (general, dataset, jobs) = setting();
    let (_, envelopes) = run(2, &general, &dataset, &jobs);
    for (i, a) in envelopes.iter().enumerate() {
        for b in &envelopes[i + 1..] {
            assert_ne!(a, b, "two users published identical weights");
        }
    }
}

//! Parallel-vs-sequential determinism: the same cohort personalized with
//! 1, 2 and 8 workers must produce bit-identical model weights and
//! bit-identical audit verdicts. This is the contract that makes the
//! trainer pool safe to scale — worker count is a pure throughput knob,
//! never a behaviour knob.

use pelican::PersonalizationConfig;
use pelican_mobility::{CampusConfig, DatasetBuilder, MobilityDataset, Scale, SpatialLevel};
use pelican_nn::{ModelEnvelope, SequenceModel, TrainConfig};
use pelican_serve::{RegistryConfig, ShardedRegistry};
use pelican_train::{
    cohort_jobs, AuditConfig, FleetTrainer, PipelineConfig, TrainJob, TrainReport,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setting() -> (SequenceModel, MobilityDataset, Vec<TrainJob>) {
    let dataset =
        DatasetBuilder::new(CampusConfig::for_scale(Scale::Tiny), 31).build(SpatialLevel::Building);
    let mut rng = StdRng::seed_from_u64(31);
    let general =
        SequenceModel::general_lstm(dataset.space.dim(), 16, dataset.n_locations(), 0.1, &mut rng);
    let n = dataset.users.len();
    let jobs = cohort_jobs(&dataset, n.saturating_sub(4)..n, 0.8);
    assert!(jobs.len() >= 2, "need a real cohort to exercise stealing");
    (general, dataset, jobs)
}

fn config(workers: usize) -> PipelineConfig {
    PipelineConfig {
        workers,
        base_seed: 77,
        personalization: PersonalizationConfig {
            train: TrainConfig { epochs: 3, ..TrainConfig::default() },
            hidden_dim: 16,
            ..PersonalizationConfig::default()
        },
        audit: AuditConfig { max_instances: 3, ..AuditConfig::default() },
        ..PipelineConfig::default()
    }
}

/// Runs the pipeline and returns (report, per-user published envelope
/// bytes in job order).
fn run(
    workers: usize,
    general: &SequenceModel,
    dataset: &MobilityDataset,
    jobs: &[TrainJob],
) -> (TrainReport, Vec<Vec<u8>>) {
    let registry = ShardedRegistry::new(general.clone(), RegistryConfig::default());
    let report = FleetTrainer::new(config(workers)).run(general, &dataset.space, jobs, &registry);
    let envelopes = jobs
        .iter()
        .map(|job| {
            let (model, _) = registry.get(job.user_id).expect("published envelope decodes");
            ModelEnvelope::encode(&model).as_bytes().to_vec()
        })
        .collect();
    (report, envelopes)
}

#[test]
fn one_two_and_eight_workers_publish_bit_identical_models() {
    let (general, dataset, jobs) = setting();
    let (sequential, sequential_envelopes) = run(1, &general, &dataset, &jobs);

    for workers in [2usize, 8] {
        let (parallel, parallel_envelopes) = run(workers, &general, &dataset, &jobs);
        assert_eq!(
            sequential_envelopes, parallel_envelopes,
            "{workers}-worker published weights must be bit-identical to sequential"
        );
        for (seq, par) in sequential.outcomes.iter().zip(&parallel.outcomes) {
            assert_eq!(seq.user_id, par.user_id, "outcomes stay in job order");
            assert_eq!(
                seq.gate, par.gate,
                "audit verdict for user {} must not depend on worker count",
                seq.user_id
            );
            assert_eq!(seq.fit.epoch_losses, par.fit.epoch_losses);
        }
    }
}

#[test]
fn distinct_users_get_distinct_models() {
    // The per-user seed derivation must actually separate users: two
    // users with the same general model and method still train different
    // parameters (different data *and* different init seeds).
    let (general, dataset, jobs) = setting();
    let (_, envelopes) = run(2, &general, &dataset, &jobs);
    for (i, a) in envelopes.iter().enumerate() {
        for b in &envelopes[i + 1..] {
            assert_ne!(a, b, "two users published identical weights");
        }
    }
}

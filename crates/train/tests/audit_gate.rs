//! Integration: nothing reaches the serving registry without clearing the
//! privacy-audit gate — or carrying the escalated defense the gate
//! deployed trying. Also exercises the serve-while-publish loop the
//! `&self` registry refactor exists for.

use pelican::{DefenseKind, PersonalizationConfig};
use pelican_mobility::{CampusConfig, DatasetBuilder, MobilityDataset, Scale, SpatialLevel};
use pelican_nn::{SequenceModel, TrainConfig};
use pelican_serve::{Lookup, RegistryConfig, ShardedRegistry};
use pelican_train::{
    cohort_jobs, AuditConfig, AuditGate, FleetTrainer, GateVerdict, PipelineConfig, TrainJob,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setting() -> (SequenceModel, MobilityDataset, Vec<TrainJob>) {
    let dataset =
        DatasetBuilder::new(CampusConfig::for_scale(Scale::Tiny), 47).build(SpatialLevel::Building);
    let mut rng = StdRng::seed_from_u64(47);
    let general =
        SequenceModel::general_lstm(dataset.space.dim(), 16, dataset.n_locations(), 0.1, &mut rng);
    let n = dataset.users.len();
    let jobs = cohort_jobs(&dataset, n.saturating_sub(3)..n, 0.8);
    (general, dataset, jobs)
}

fn config() -> PipelineConfig {
    PipelineConfig {
        workers: 4,
        base_seed: 7,
        personalization: PersonalizationConfig {
            train: TrainConfig { epochs: 3, ..TrainConfig::default() },
            hidden_dim: 16,
            ..PersonalizationConfig::default()
        },
        // A deliberately tight budget so the escalation path really runs.
        audit: AuditConfig { max_instances: 4, max_leakage: 0.2, ..AuditConfig::default() },
        ..PipelineConfig::default()
    }
}

#[test]
fn every_published_model_passed_the_gate_or_carries_an_escalated_defense() {
    let (general, dataset, jobs) = setting();
    let registry = ShardedRegistry::new(general.clone(), RegistryConfig::default());
    let pipeline_config = config();
    let audit_config = pipeline_config.audit.clone();
    let report = FleetTrainer::new(pipeline_config).run(&general, &dataset.space, &jobs, &registry);

    assert_eq!(report.outcomes.len(), jobs.len(), "every job publishes exactly once");
    assert_eq!(registry.stats().cold_models, jobs.len());
    assert_eq!(
        report.passed() + report.escalated() + report.exhausted(),
        jobs.len(),
        "verdicts partition the cohort"
    );

    let gate = AuditGate::new(audit_config.clone());
    for outcome in &report.outcomes {
        // The registry serves exactly what the gate released.
        let (published, lookup) = registry.get(outcome.user_id).unwrap();
        assert_ne!(lookup, Lookup::Fallback, "personalized user must not fall back");

        match outcome.gate.verdict {
            GateVerdict::Passed => {
                assert_eq!(outcome.gate.rungs_climbed, 0);
                assert_eq!(outcome.gate.defense, audit_config.base_defense);
                assert!(outcome.gate.within_budget(&audit_config));
            }
            GateVerdict::Escalated => {
                assert!(outcome.gate.rungs_climbed >= 1);
                assert!(outcome.gate.within_budget(&audit_config));
                assert!(
                    outcome.gate.initial_leakage > audit_config.max_leakage,
                    "escalation only happens when the base defense leaked"
                );
            }
            GateVerdict::Exhausted => {
                assert_eq!(outcome.gate.rungs_climbed, audit_config.ladder.len());
                assert_eq!(
                    outcome.gate.defense,
                    *audit_config.ladder.last().unwrap(),
                    "a still-leaking model carries the strongest rung"
                );
            }
        }

        // The deployed defense is really installed on the served model.
        match outcome.gate.defense {
            DefenseKind::None => assert_eq!(published.temperature(), 1.0),
            DefenseKind::Temperature { temperature } => {
                assert_eq!(published.temperature(), temperature)
            }
            _ => {}
        }

        // Gate honesty: re-auditing the *published* model reproduces the
        // recorded final leakage.
        let job = jobs.iter().find(|j| j.user_id == outcome.user_id).unwrap();
        let eval = gate.audit(&published, &dataset.space, &job.subject);
        assert_eq!(eval.accuracy(audit_config.audit_k), outcome.gate.final_leakage);
    }
}

#[test]
fn serving_continues_while_the_pipeline_publishes() {
    let (general, dataset, jobs) = setting();
    let registry = ShardedRegistry::new(general.clone(), RegistryConfig::default());
    let trainer = FleetTrainer::new(config());
    let xs = vec![vec![0.1; dataset.space.dim()]; 2];

    std::thread::scope(|s| {
        // A serving thread hammers the registry for the whole training
        // run: before a user's model lands it gets the general fallback,
        // afterwards the personalized model — never an error, never a
        // blocked publisher.
        let serve_registry = &registry;
        let serve_jobs = &jobs;
        let server = s.spawn(move || {
            let mut answered = 0u64;
            loop {
                for job in serve_jobs {
                    let (model, _) = serve_registry.get(job.user_id).unwrap();
                    let probs = model.predict_proba(&xs);
                    assert_eq!(probs.len(), serve_registry.general().output_dim());
                    answered += 1;
                }
                if serve_jobs.iter().all(|j| serve_registry.is_enrolled(j.user_id)) {
                    return answered;
                }
            }
        });
        trainer.run(&general, &dataset.space, &jobs, &registry);
        let answered = server.join().expect("serving thread never panics");
        assert!(answered >= jobs.len() as u64);
    });
    assert_eq!(registry.stats().cold_models, jobs.len());
}

//! Sequence neural networks with hand-written backpropagation.
//!
//! This crate replaces the PyTorch substrate the Pelican paper was built on.
//! It provides exactly the architecture family the paper uses for
//! next-location prediction (Fig. 1): stacked [`Lstm`] layers, [`Dropout`]
//! between them, a final [`Linear`] head, and an inference-time temperature
//! scale used both by the gradient-descent inversion attack and by the
//! Pelican privacy layer.
//!
//! Three capabilities drive the design:
//!
//! * **Exact input gradients.** The model-inversion attack of §III-B
//!   reconstructs inputs by gradient descent *through the trained model*, so
//!   every layer's backward pass returns the gradient with respect to its
//!   input, not just its parameters (see [`SequenceModel::input_gradient`]).
//! * **Layer freezing.** Transfer-learning personalization (feature
//!   extraction and fine tuning, §III-A3) trains only a subset of layers.
//!   Each layer carries a `trainable` flag honoured by the optimizers.
//! * **Determinism.** All stochastic pieces (init, dropout, shuffling) draw
//!   from explicit seeds.
//!
//! # Example
//!
//! ```
//! use pelican_nn::SequenceModel;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let mut model = SequenceModel::builder()
//!     .lstm(8, 16, &mut rng)
//!     .lstm(16, 16, &mut rng)
//!     .linear(16, 4, &mut rng)
//!     .build();
//! let xs = vec![vec![0.0; 8], vec![0.0; 8]];
//! let probs = model.predict_proba(&xs);
//! assert_eq!(probs.len(), 4);
//! ```

mod chunk;
pub mod dropout;
pub mod layer;
pub mod linear;
pub mod lockstep;
pub mod loss;
pub mod lstm;
pub mod metrics;
pub mod model;
pub mod optim;
pub mod serialize;
pub mod train;

pub use dropout::Dropout;
pub use layer::Layer;
pub use linear::Linear;
pub use lockstep::{fit_lockstep, LockstepJob, LockstepOutcome};
pub use loss::{softmax_cross_entropy, softmax_cross_entropy_chunk};
pub use lstm::Lstm;
pub use metrics::{top_k_accuracy, TopKAccuracy};
pub use model::{query_hash, ModelBuilder, Postprocess, SequenceModel};
pub use optim::{Adam, Optimizer, Sgd};
pub use serialize::{ModelCodecError, ModelEnvelope};
pub use train::{
    fit, grid_search, time_series_folds, EvalReport, FitReport, GridPoint, TrainConfig,
};

/// A single timestep of model input: a dense feature vector.
pub type Step = Vec<f32>;

/// A full input sequence: `T` timesteps of equal-length feature vectors.
pub type Sequence = Vec<Step>;

/// A labelled training sample: an input sequence and a target class index.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Input sequence (`T × input_dim`).
    pub xs: Sequence,
    /// Target class (e.g. the index of the next location).
    pub target: usize,
}

impl Sample {
    /// Creates a sample from a sequence and target class.
    pub fn new(xs: Sequence, target: usize) -> Self {
        Self { xs, target }
    }
}

//! Lockstep batched training of many same-shape user models.
//!
//! The fleet personalization pipeline trains one [`SequenceModel`] per
//! user. Run sequentially (see [`crate::fit`]), every LSTM timestep is a
//! GEMV-shaped product that streams the weight matrices through memory
//! once per sample. [`fit_lockstep`] instead drives a *cohort* of user
//! training jobs epoch-by-epoch and mini-batch-by-mini-batch in lockstep,
//! pushing each user's whole mini-batch through the fused chunk kernels
//! ([`SequenceModel::forward_chunk`] /
//! [`SequenceModel::backward_chunk_from_logits`]): each LSTM timestep's
//! gate computation becomes one GEMM over the chunk's active samples, the
//! `Linear` head becomes one GEMM over every timestep of every sample,
//! and weight-gradient accumulation becomes one fused
//! [`pelican_tensor::Matrix::rank_updates`] per weight matrix.
//!
//! # The bit-identity contract
//!
//! The repo's signature guarantee carries over from the batched *serving*
//! path (`Lstm::infer_batch`): every user's trained weights, epoch
//! losses, and recorded FLOPs are **bit-identical** to running
//! [`crate::fit`] on that user alone. The discipline:
//!
//! * every fused kernel preserves strict per-row `k`-order accumulation
//!   and the sequential zero-skip rules, so forward activations and
//!   backward gradients match bit for bit;
//! * gradient contributions feed the fused rank-update kernels in exactly
//!   the order the sequential loop applies them (sample-major, timestep
//!   descending for LSTM, ascending for `Linear`);
//! * per-user RNG streams are untouched: each job keeps its own shuffle
//!   RNG seeded from its `shuffle_seed`, and dropout draws one
//!   counter-based mask per sample in chunk order — the same indices the
//!   sequential per-sample forwards would consume;
//! * gradient averaging stays **per user**: each job owns its optimizer
//!   (and its Adam moment state), and `optimizer.step` sees only that
//!   user's model and that user's chunk length. Nothing is averaged
//!   across users.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use pelican_tensor::thread_flops_now;

use crate::chunk::ChunkBatch;
use crate::train::{shuffle, FitReport};
use crate::{softmax_cross_entropy_chunk, Sample, SequenceModel, Step, TrainConfig};

/// One user's training job in a lockstep cohort.
#[derive(Debug)]
pub struct LockstepJob<'a> {
    /// The user's model, trained in place.
    pub model: &'a mut SequenceModel,
    /// The user's training samples.
    pub samples: &'a [Sample],
    /// The user's hyperparameters (including their private shuffle seed).
    pub config: TrainConfig,
}

/// Per-user outcome of a [`fit_lockstep`] cohort.
#[derive(Debug, Clone, PartialEq)]
pub struct LockstepOutcome {
    /// The user's training report — bit-identical to what [`crate::fit`]
    /// would have returned for the same job.
    pub fit: FitReport,
    /// FLOPs attributable to this user's job (the cohort driver is
    /// single-threaded, so per-user thread-counter deltas partition the
    /// cohort's total exactly). Equal to the sequential path's count.
    pub flops: u64,
    /// Host wall-clock time spent on this user's chunks.
    pub host_elapsed: Duration,
}

/// Trains a cohort of user models in lockstep through the fused chunk
/// kernels.
///
/// Jobs advance epoch-by-epoch and mini-batch-by-mini-batch together;
/// jobs with fewer epochs or chunks simply drop out of the active set
/// (the ragged-cohort analogue of `infer_batch`'s active-set handling).
/// Each user's weights, [`FitReport`], and recorded FLOPs are
/// bit-identical to calling [`crate::fit`] on that job alone — see the
/// module docs for the full contract.
///
/// # Panics
///
/// Panics if any job has no samples or a zero batch size (the same
/// preconditions as [`crate::fit`]).
pub fn fit_lockstep(jobs: &mut [LockstepJob<'_>]) -> Vec<LockstepOutcome> {
    struct UserState {
        rng: StdRng,
        order: Vec<usize>,
        epoch_loss: f32,
        outcome: LockstepOutcome,
    }
    for job in jobs.iter() {
        assert!(!job.samples.is_empty(), "cannot fit on an empty dataset");
        assert!(job.config.batch_size > 0, "batch size must be positive");
    }
    let mut optimizers: Vec<_> = jobs.iter().map(|j| j.config.make_optimizer()).collect();
    let mut states: Vec<UserState> = jobs
        .iter()
        .map(|j| UserState {
            rng: StdRng::seed_from_u64(j.config.shuffle_seed),
            order: (0..j.samples.len()).collect(),
            epoch_loss: 0.0,
            outcome: LockstepOutcome {
                fit: FitReport {
                    epoch_losses: Vec::with_capacity(j.config.epochs),
                    steps: 0,
                    samples_per_epoch: j.samples.len(),
                },
                flops: 0,
                host_elapsed: Duration::ZERO,
            },
        })
        .collect();
    let max_epochs = jobs.iter().map(|j| j.config.epochs).max().unwrap_or(0);
    for epoch in 0..max_epochs {
        for (job, st) in jobs.iter().zip(&mut states) {
            if epoch < job.config.epochs {
                shuffle(&mut st.order, &mut st.rng);
                st.epoch_loss = 0.0;
            }
        }
        let max_chunks = jobs
            .iter()
            .map(|j| {
                if epoch < j.config.epochs {
                    j.samples.len().div_ceil(j.config.batch_size)
                } else {
                    0
                }
            })
            .max()
            .unwrap_or(0);
        for chunk_index in 0..max_chunks {
            for ((job, st), optimizer) in jobs.iter_mut().zip(&mut states).zip(&mut optimizers) {
                if epoch >= job.config.epochs {
                    continue;
                }
                let start = chunk_index * job.config.batch_size;
                if start >= st.order.len() {
                    continue;
                }
                let end = (start + job.config.batch_size).min(st.order.len());
                let chunk = &st.order[start..end];

                let wall = Instant::now();
                let flops_before = thread_flops_now();

                // Pack the mini-batch straight from the samples (no
                // per-sequence clones) and keep the whole round trip in
                // packed form; the input gradients the packed backward
                // returns are unused here, so they are simply dropped
                // without unpacking.
                let batch = ChunkBatch::pack(
                    chunk.iter().map(|&idx| &job.samples[idx].xs),
                    job.model.input_dim(),
                );
                let outs = job.model.forward_chunk_packed(batch);
                let rows: Vec<(&[f32], usize)> = chunk
                    .iter()
                    .enumerate()
                    .map(|(j, &idx)| (outs.last_row(j), job.samples[idx].target))
                    .collect();
                let scored = softmax_cross_entropy_chunk(&rows);
                let mut per_sample: Vec<(usize, Step)> = Vec::with_capacity(chunk.len());
                for ((loss, dlogits), &idx) in scored.into_iter().zip(chunk) {
                    st.epoch_loss += loss;
                    per_sample.push((job.samples[idx].xs.len(), dlogits));
                }
                job.model.backward_chunk_from_logits_packed(per_sample);
                optimizer.step(job.model, chunk.len());
                st.outcome.fit.steps += 1;

                st.outcome.flops += thread_flops_now().wrapping_sub(flops_before);
                st.outcome.host_elapsed += wall.elapsed();
            }
        }
        for (job, st) in jobs.iter().zip(&mut states) {
            if epoch < job.config.epochs {
                st.outcome.fit.epoch_losses.push(st.epoch_loss / job.samples.len() as f32);
            }
        }
    }
    states.into_iter().map(|st| st.outcome).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit;
    use rand::RngExt as _;

    fn toy_samples(n: usize, classes: usize, seed: u64) -> Vec<Sample> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let c = rng.random_range(0..classes);
                let mut x = vec![0.0; classes];
                x[c] = 1.0;
                Sample::new(vec![x.clone(), x], c)
            })
            .collect()
    }

    fn toy_model(classes: usize, seed: u64) -> SequenceModel {
        let mut rng = StdRng::seed_from_u64(seed);
        SequenceModel::general_lstm(classes, 12, classes, 0.1, &mut rng)
    }

    #[test]
    fn empty_cohort_is_fine() {
        assert!(fit_lockstep(&mut []).is_empty());
    }

    #[test]
    fn singleton_cohort_matches_fit_bitwise() {
        let samples = toy_samples(23, 4, 7);
        let config = TrainConfig { epochs: 3, batch_size: 8, ..TrainConfig::default() };

        let mut seq_model = toy_model(4, 5);
        let seq_report = fit(&mut seq_model, &samples, &config);

        let mut lock_model = toy_model(4, 5);
        let outcomes = fit_lockstep(&mut [LockstepJob {
            model: &mut lock_model,
            samples: &samples,
            config: config.clone(),
        }]);

        assert_eq!(outcomes[0].fit, seq_report);
        assert_eq!(
            crate::ModelEnvelope::encode(&seq_model),
            crate::ModelEnvelope::encode(&lock_model),
            "lockstep weights diverged from sequential fit"
        );
    }

    #[test]
    fn ragged_cohort_epochs_and_chunks_drop_out() {
        // Users with different sample counts and epoch counts: each must
        // still match its own sequential run exactly.
        let users: Vec<(Vec<Sample>, TrainConfig, u64)> = vec![
            (
                toy_samples(5, 3, 1),
                TrainConfig { epochs: 1, batch_size: 4, shuffle_seed: 11, ..Default::default() },
                21,
            ),
            (
                toy_samples(17, 3, 2),
                TrainConfig { epochs: 4, batch_size: 4, shuffle_seed: 12, ..Default::default() },
                22,
            ),
            (
                toy_samples(9, 3, 3),
                TrainConfig { epochs: 2, batch_size: 16, shuffle_seed: 13, ..Default::default() },
                23,
            ),
        ];
        let mut seq_models: Vec<SequenceModel> =
            users.iter().map(|&(_, _, ms)| toy_model(3, ms)).collect();
        let seq_reports: Vec<FitReport> = seq_models
            .iter_mut()
            .zip(&users)
            .map(|(m, (samples, config, _))| fit(m, samples, config))
            .collect();

        let mut lock_models: Vec<SequenceModel> =
            users.iter().map(|&(_, _, ms)| toy_model(3, ms)).collect();
        let mut jobs: Vec<LockstepJob> = lock_models
            .iter_mut()
            .zip(&users)
            .map(|(model, (samples, config, _))| LockstepJob {
                model,
                samples,
                config: config.clone(),
            })
            .collect();
        let outcomes = fit_lockstep(&mut jobs);

        for ((seq, lock), (outcome, report)) in
            seq_models.iter().zip(&lock_models).zip(outcomes.iter().zip(&seq_reports))
        {
            assert_eq!(&outcome.fit, report);
            assert_eq!(crate::ModelEnvelope::encode(seq), crate::ModelEnvelope::encode(lock));
        }
    }
}

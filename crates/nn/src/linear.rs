//! Fully-connected layer applied independently to each timestep.

use pelican_tensor::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::chunk::ChunkBatch;
use crate::{Sequence, Step};

/// A fully-connected layer, `y = W·x + b`, applied per timestep.
///
/// In the paper's architectures (Fig. 1) a single `Linear` maps the last
/// LSTM hidden state to location logits; the training loop only propagates
/// loss through the final timestep, so applying the layer to every timestep
/// costs nothing extra for the sequence lengths used here (`T = 2`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    w: Matrix,
    b: Vec<f32>,
    /// Whether optimizers may update this layer's parameters.
    pub trainable: bool,
    #[serde(skip)]
    grad_w: Option<Matrix>,
    #[serde(skip)]
    grad_b: Vec<f32>,
    #[serde(skip)]
    cache_inputs: Sequence,
    /// Packed input cache written by [`Linear::forward_chunk_packed`].
    #[serde(skip)]
    chunk_inputs: Option<ChunkBatch>,
}

impl Linear {
    /// Creates a layer with Xavier-uniform weights and zero bias.
    pub fn new<R: Rng + ?Sized>(input_dim: usize, output_dim: usize, rng: &mut R) -> Self {
        assert!(input_dim > 0 && output_dim > 0, "layer dimensions must be positive");
        Self {
            w: pelican_tensor::xavier_uniform(output_dim, input_dim, rng),
            b: vec![0.0; output_dim],
            trainable: true,
            grad_w: None,
            grad_b: Vec::new(),
            cache_inputs: Vec::new(),
            chunk_inputs: None,
        }
    }

    /// Reassembles a layer from raw parameters (e.g. from a decoded
    /// [`crate::ModelEnvelope`]).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != w.rows()`.
    pub fn from_parts(w: Matrix, b: Vec<f32>) -> Self {
        assert_eq!(b.len(), w.rows(), "bias length must equal output dimension");
        Self {
            w,
            b,
            trainable: true,
            grad_w: None,
            grad_b: Vec::new(),
            cache_inputs: Vec::new(),
            chunk_inputs: None,
        }
    }

    /// Input feature dimension.
    pub fn input_dim(&self) -> usize {
        self.w.cols()
    }

    /// Output feature dimension.
    pub fn output_dim(&self) -> usize {
        self.w.rows()
    }

    /// Borrows the weight matrix (`output_dim × input_dim`).
    pub fn weight(&self) -> &Matrix {
        &self.w
    }

    /// Borrows the bias vector.
    pub fn bias(&self) -> &[f32] {
        &self.b
    }

    fn apply(&self, x: &Step) -> Step {
        let mut y = self.w.matvec(x);
        for (yv, &bv) in y.iter_mut().zip(&self.b) {
            *yv += bv;
        }
        y
    }

    /// Inference-mode forward pass (no caches are written).
    pub fn infer(&self, xs: &[Step]) -> Sequence {
        xs.iter().map(|x| self.apply(x)).collect()
    }

    /// Batched inference: every timestep of every sequence is packed into
    /// one matrix and multiplied against the weights in a single pass, so
    /// the weight matrix streams through memory once per batch instead of
    /// once per timestep. Bit-identical to per-sequence [`Linear::infer`],
    /// with the same recorded FLOP count.
    pub fn infer_batch<S: AsRef<[Step]>>(&self, xs: &[S]) -> Vec<Sequence> {
        let total_steps: usize = xs.iter().map(|s| s.as_ref().len()).sum();
        let mut packed = Matrix::zeros(total_steps, self.input_dim());
        let mut r = 0;
        for seq in xs {
            for step in seq.as_ref() {
                packed.row_mut(r).copy_from_slice(step);
                r += 1;
            }
        }
        let ys = packed.matmul_transpose(&self.w);
        let mut out = Vec::with_capacity(xs.len());
        let mut r = 0;
        for seq in xs {
            let mut rows = Vec::with_capacity(seq.as_ref().len());
            for _ in seq.as_ref() {
                let mut y = ys.row(r).to_vec();
                for (yv, &bv) in y.iter_mut().zip(&self.b) {
                    *yv += bv;
                }
                rows.push(y);
                r += 1;
            }
            out.push(rows);
        }
        out
    }

    /// Training-mode forward pass; caches inputs for [`Linear::backward`].
    pub fn forward(&mut self, xs: &Sequence) -> Sequence {
        self.cache_inputs = xs.clone();
        self.infer(xs)
    }

    /// Backpropagates `grad_out` (one gradient per timestep), accumulating
    /// parameter gradients when trainable and returning input gradients.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Linear::forward`] or with a gradient whose
    /// length differs from the cached sequence length.
    pub fn backward(&mut self, grad_out: &Sequence) -> Sequence {
        assert_eq!(
            grad_out.len(),
            self.cache_inputs.len(),
            "backward called with {} grads but {} cached steps",
            grad_out.len(),
            self.cache_inputs.len()
        );
        if self.trainable {
            let gw = self.grad_w.get_or_insert_with(|| Matrix::zeros(self.w.rows(), self.w.cols()));
            if self.grad_b.len() != self.b.len() {
                self.grad_b = vec![0.0; self.b.len()];
            }
            for (g, x) in grad_out.iter().zip(&self.cache_inputs) {
                gw.rank_one_update(1.0, g, x);
                for (db, &gv) in self.grad_b.iter_mut().zip(g) {
                    *db += gv;
                }
            }
        }
        grad_out.iter().map(|g| self.w.matvec_transpose(g)).collect()
    }

    /// Lockstep training-mode forward pass over a packed chunk; keeps the
    /// packed inputs (by move — no clone) for
    /// [`Linear::backward_chunk_packed`].
    ///
    /// One GEMM over every timestep of every sample plus a per-row bias
    /// add — the [`Linear::infer_batch`] discipline — so outputs and
    /// recorded FLOPs are bit-identical to calling [`Linear::forward`]
    /// per sample.
    pub(crate) fn forward_chunk_packed(&mut self, x: ChunkBatch) -> ChunkBatch {
        let mut ys = x.rows.matmul_transpose(&self.w);
        for r in 0..ys.rows() {
            for (yv, &bv) in ys.row_mut(r).iter_mut().zip(&self.b) {
                *yv += bv;
            }
        }
        let out = ChunkBatch { lens: x.lens.clone(), offsets: x.offsets.clone(), rows: ys };
        self.chunk_inputs = Some(x);
        out
    }

    /// Lockstep backward pass over a packed chunk.
    ///
    /// Weight-gradient accumulation runs as one fused
    /// [`Matrix::rank_updates`] with contributions in natural packed row
    /// order — exactly the order the sequential path applies them
    /// (sample-major, timestep-ascending) — and the input gradients of
    /// every timestep of every sample come from a single GEMM.
    /// Bit-identical state and recorded FLOPs versus calling
    /// [`Linear::backward`] once per sample in chunk order.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Linear::forward_chunk_packed`] or with
    /// mismatched gradient shapes.
    pub(crate) fn backward_chunk_packed(&mut self, grad: ChunkBatch) -> ChunkBatch {
        let cached = self.chunk_inputs.as_ref().expect("backward_chunk_packed before forward");
        assert_eq!(
            grad.lens, cached.lens,
            "backward_chunk_packed gradient lengths do not match cached chunk"
        );
        if self.trainable {
            let gw = self.grad_w.get_or_insert_with(|| Matrix::zeros(self.w.rows(), self.w.cols()));
            if self.grad_b.len() != self.b.len() {
                self.grad_b = vec![0.0; self.b.len()];
            }
            let total = grad.total();
            let mut updates = Vec::with_capacity(total);
            for r in 0..total {
                updates.push((grad.rows.row(r), cached.rows.row(r)));
            }
            gw.rank_updates(1.0, &updates);
            for r in 0..total {
                for (db, &gv) in self.grad_b.iter_mut().zip(grad.rows.row(r)) {
                    *db += gv;
                }
            }
        }
        // One GEMM for every timestep of every sample: `G · W` matches the
        // per-row bits of `matvec_transpose(g)` (same k order, same
        // zero-skip on the gradient element).
        let dx = grad.rows.matmul(&self.w);
        ChunkBatch { lens: grad.lens, offsets: grad.offsets, rows: dx }
    }

    /// Visits `(param, grad)` pairs as flat slices; used by optimizers.
    ///
    /// Does nothing if the layer is frozen or has no accumulated gradients.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        if !self.trainable {
            return;
        }
        if let Some(gw) = self.grad_w.as_mut() {
            f(self.w.as_mut_slice(), gw.as_mut_slice());
        }
        if !self.grad_b.is_empty() {
            f(&mut self.b, &mut self.grad_b);
        }
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        if let Some(gw) = self.grad_w.as_mut() {
            gw.fill_zero();
        }
        self.grad_b.fill(0.0);
    }

    /// Number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layer() -> Linear {
        Linear::new(3, 2, &mut StdRng::seed_from_u64(9))
    }

    #[test]
    fn forward_matches_manual_computation() {
        let mut l = layer();
        let xs = vec![vec![1.0, 0.0, -1.0]];
        let ys = l.forward(&xs);
        let w = l.weight();
        let expect = [w[(0, 0)] - w[(0, 2)], w[(1, 0)] - w[(1, 2)]];
        assert!((ys[0][0] - expect[0]).abs() < 1e-6);
        assert!((ys[0][1] - expect[1]).abs() < 1e-6);
    }

    #[test]
    fn backward_input_grad_matches_finite_difference() {
        let mut l = layer();
        let xs = vec![vec![0.4, -0.2, 0.7]];
        let ys = l.forward(&xs);
        // Scalar objective: sum of outputs. dL/dy = ones.
        let grad = l.backward(&vec![vec![1.0; ys[0].len()]]);
        let eps = 1e-3;
        for j in 0..3 {
            let mut plus = xs.clone();
            plus[0][j] += eps;
            let mut minus = xs.clone();
            minus[0][j] -= eps;
            let f = |s: &Sequence| l.infer(s)[0].iter().sum::<f32>();
            let fd = (f(&plus) - f(&minus)) / (2.0 * eps);
            assert!(
                (grad[0][j] - fd).abs() < 1e-2,
                "input grad {j}: analytic {} vs fd {fd}",
                grad[0][j]
            );
        }
    }

    #[test]
    fn frozen_layer_accumulates_no_grads() {
        let mut l = layer();
        l.trainable = false;
        let xs = vec![vec![1.0, 2.0, 3.0]];
        l.forward(&xs);
        l.backward(&vec![vec![1.0, 1.0]]);
        let mut visited = 0;
        l.visit_params(&mut |_, _| visited += 1);
        assert_eq!(visited, 0);
    }

    #[test]
    fn param_count_is_w_plus_b() {
        assert_eq!(layer().param_count(), 3 * 2 + 2);
    }

    #[test]
    fn batched_inference_matches_sequential_exactly() {
        let l = layer();
        let seqs: Vec<Sequence> = vec![
            vec![vec![0.4, -0.2, 0.7]],
            vec![vec![1.0, 0.5, -1.5], vec![0.0, 0.25, 0.125]],
            vec![vec![-0.3, 0.9, 0.1], vec![0.2, 0.2, 0.2], vec![0.6, -0.6, 0.0]],
        ];
        let batched = l.infer_batch(&seqs);
        for (seq, got) in seqs.iter().zip(&batched) {
            assert_eq!(&l.infer(seq), got);
        }
    }
}

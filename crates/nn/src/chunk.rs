//! Packed sample-major batch representation for the lockstep chunk path.
//!
//! The sequential training path hands `Vec<Vec<Vec<f32>>>` sequences
//! between layers; at mobile-scale layer widths the per-timestep heap
//! vectors cost more than the arithmetic they carry. The chunk path
//! instead threads one [`ChunkBatch`] — a single row-major [`Matrix`]
//! holding every timestep of every sample, plus the ragged-length
//! bookkeeping — through the whole forward/backward pipeline, so each
//! layer boundary moves one allocation instead of one per sample-step.
//!
//! Row `offsets[i] + t` is sample `i`'s timestep `t`. Packing order is
//! sample-major (all of sample 0, then sample 1, …); every kernel in the
//! chunk path processes rows independently or in an explicitly documented
//! order, so the layout is purely a memory-level choice — the FP
//! operations and their order are identical to the sequential path.

use pelican_tensor::Matrix;

use crate::Sequence;

/// A chunk of ragged sequences packed into one sample-major matrix.
#[derive(Debug, Clone)]
pub(crate) struct ChunkBatch {
    /// Per-sample sequence lengths.
    pub lens: Vec<usize>,
    /// Row offset of each sample's `t = 0`; `lens.len() + 1` entries, the
    /// last being the total row count.
    pub offsets: Vec<usize>,
    /// Packed rows, `total × dim`.
    pub rows: Matrix,
}

impl ChunkBatch {
    /// Packs borrowed sequences into one matrix without cloning the
    /// nested vectors. `dim` is the row width (needed explicitly so an
    /// empty chunk still carries the right shape).
    pub fn pack<'a, I>(seqs: I, dim: usize) -> Self
    where
        I: IntoIterator<Item = &'a Sequence>,
        I::IntoIter: Clone,
    {
        let it = seqs.into_iter();
        let lens: Vec<usize> = it.clone().map(|s| s.len()).collect();
        let offsets = Self::offsets_of(&lens);
        let total = *offsets.last().expect("offsets always has a final total entry");
        let mut rows = Matrix::zeros(total, dim);
        for (i, seq) in it.enumerate() {
            for (t, step) in seq.iter().enumerate() {
                rows.row_mut(offsets[i] + t).copy_from_slice(step);
            }
        }
        Self { lens, offsets, rows }
    }

    /// Prefix-sum row offsets for a set of sequence lengths.
    pub fn offsets_of(lens: &[usize]) -> Vec<usize> {
        let mut offsets = Vec::with_capacity(lens.len() + 1);
        let mut total = 0usize;
        for &len in lens {
            offsets.push(total);
            total += len;
        }
        offsets.push(total);
        offsets
    }

    /// Number of samples in the chunk.
    pub fn samples(&self) -> usize {
        self.lens.len()
    }

    /// Total packed rows.
    pub fn total(&self) -> usize {
        self.offsets[self.lens.len()]
    }

    /// Row `t` of sample `i`.
    pub fn row(&self, i: usize, t: usize) -> &[f32] {
        self.rows.row(self.offsets[i] + t)
    }

    /// The final timestep's row of sample `i` — what sequence-to-one
    /// losses consume.
    pub fn last_row(&self, i: usize) -> &[f32] {
        self.rows.row(self.offsets[i + 1] - 1)
    }

    /// Unpacks into the nested per-sample representation (compatibility
    /// with the unpacked chunk API; the hot path never calls this).
    pub fn unpack(&self) -> Vec<Sequence> {
        (0..self.samples())
            .map(|i| (0..self.lens[i]).map(|t| self.row(i, t).to_vec()).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_round_trips_ragged_sequences() {
        let seqs: Vec<Sequence> = vec![
            vec![vec![1.0, 2.0], vec![3.0, 4.0]],
            vec![vec![5.0, 6.0]],
            vec![vec![7.0, 8.0], vec![9.0, 10.0], vec![11.0, 12.0]],
        ];
        let batch = ChunkBatch::pack(seqs.iter(), 2);
        assert_eq!(batch.lens, vec![2, 1, 3]);
        assert_eq!(batch.offsets, vec![0, 2, 3, 6]);
        assert_eq!(batch.total(), 6);
        assert_eq!(batch.row(2, 1), &[9.0, 10.0]);
        assert_eq!(batch.last_row(0), &[3.0, 4.0]);
        assert_eq!(batch.unpack(), seqs);
    }

    #[test]
    fn empty_chunk_keeps_its_width() {
        let batch = ChunkBatch::pack(std::iter::empty(), 7);
        assert_eq!(batch.samples(), 0);
        assert_eq!(batch.total(), 0);
        assert_eq!(batch.rows.cols(), 7);
    }
}

//! Long short-term memory layer with full backpropagation through time.
//!
//! Implements the standard LSTM cell of Hochreiter & Schmidhuber —
//! the architecture the paper identifies as state of the art for human
//! mobility prediction (§II) — with a hand-written BPTT backward pass that
//! yields exact gradients with respect to both parameters and inputs. Input
//! gradients are what make the gradient-descent model-inversion attack of
//! §III-B possible.

use pelican_tensor::{sigmoid, Matrix};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::chunk::ChunkBatch;
use crate::{Sequence, Step};

/// Activations cached for one timestep during the forward pass.
#[derive(Debug, Clone)]
struct StepCache {
    x: Step,
    h_prev: Step,
    c_prev: Step,
    i: Step,
    f: Step,
    g: Step,
    o: Step,
    tanh_c: Step,
}

/// Flat activation caches for one whole chunk, written by
/// [`Lstm::forward_chunk`] and consumed by [`Lstm::backward_chunk`].
///
/// Rows are packed sample-major (`offsets[i] + t` addresses sample `i`,
/// timestep `t`), so the entire chunk needs a handful of allocations
/// instead of one [`StepCache`] (eight heap vectors) per sample-step —
/// at mobile-scale hidden sizes the per-step allocation traffic costs
/// more than the gate arithmetic it books. `c`/`h` store *post*-step
/// state; the previous row (or zeros at `t == 0`) is the `c_prev` /
/// `h_prev` the backward pass needs.
#[derive(Debug, Clone)]
struct ChunkCache {
    /// Per-sample sequence lengths.
    lens: Vec<usize>,
    /// Row offset of each sample's `t = 0` (length `lens.len() + 1`;
    /// the final entry is the total row count).
    offsets: Vec<usize>,
    /// Inputs, `total × I` — also the operand of the fused input GEMM.
    x: Matrix,
    /// Gate activations `[i, f, g, o]` per row, `total × 4H`.
    gates: Vec<f32>,
    /// Cell state after each step, `total × H`.
    c: Vec<f32>,
    /// `tanh` of the cell state, `total × H`.
    tanh_c: Vec<f32>,
    /// Hidden state after each step, `total × H`.
    h: Vec<f32>,
}

impl Default for ChunkCache {
    fn default() -> Self {
        Self {
            lens: Vec::new(),
            offsets: vec![0],
            x: Matrix::zeros(0, 0),
            gates: Vec::new(),
            c: Vec::new(),
            tanh_c: Vec::new(),
            h: Vec::new(),
        }
    }
}

/// An LSTM layer processing sequences step by step.
///
/// Gate layout in the packed `4H` pre-activation vector is `[i, f, g, o]`
/// (input, forget, cell candidate, output), matching PyTorch's `nn.LSTM`
/// so that hyperparameters transfer intuition.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Lstm {
    /// Input-to-hidden weights, `4H × I`.
    w_ih: Matrix,
    /// Hidden-to-hidden weights, `4H × H`.
    w_hh: Matrix,
    /// Combined gate bias, length `4H`. Forget-gate slice initialized to 1.
    b: Vec<f32>,
    hidden: usize,
    /// Whether optimizers may update this layer's parameters.
    pub trainable: bool,
    #[serde(skip)]
    grad_w_ih: Option<Matrix>,
    #[serde(skip)]
    grad_w_hh: Option<Matrix>,
    #[serde(skip)]
    grad_b: Vec<f32>,
    #[serde(skip)]
    cache: Vec<StepCache>,
    /// Flat chunk caches written by [`Lstm::forward_chunk`].
    #[serde(skip)]
    chunk_cache: ChunkCache,
}

impl Lstm {
    /// Creates an LSTM with Xavier-uniform weights and the forget-gate bias
    /// set to 1 (the usual trick to avoid early vanishing of cell state).
    pub fn new<R: Rng + ?Sized>(input_dim: usize, hidden_dim: usize, rng: &mut R) -> Self {
        assert!(input_dim > 0 && hidden_dim > 0, "layer dimensions must be positive");
        let mut b = vec![0.0; 4 * hidden_dim];
        b[hidden_dim..2 * hidden_dim].fill(1.0);
        Self {
            w_ih: pelican_tensor::xavier_uniform(4 * hidden_dim, input_dim, rng),
            w_hh: pelican_tensor::xavier_uniform(4 * hidden_dim, hidden_dim, rng),
            b,
            hidden: hidden_dim,
            trainable: true,
            grad_w_ih: None,
            grad_w_hh: None,
            grad_b: Vec::new(),
            cache: Vec::new(),
            chunk_cache: ChunkCache::default(),
        }
    }

    /// Reassembles an LSTM from raw parameters (e.g. from a decoded
    /// [`crate::ModelEnvelope`]).
    ///
    /// # Panics
    ///
    /// Panics if the shapes are inconsistent: `w_ih` must be `4H × I`,
    /// `w_hh` must be `4H × H` and `b` must have length `4H`.
    pub fn from_parts(w_ih: Matrix, w_hh: Matrix, b: Vec<f32>) -> Self {
        let hidden = w_hh.cols();
        assert_eq!(w_ih.rows(), 4 * hidden, "w_ih must have 4H rows");
        assert_eq!(w_hh.rows(), 4 * hidden, "w_hh must have 4H rows");
        assert_eq!(b.len(), 4 * hidden, "bias must have 4H entries");
        Self {
            w_ih,
            w_hh,
            b,
            hidden,
            trainable: true,
            grad_w_ih: None,
            grad_w_hh: None,
            grad_b: Vec::new(),
            cache: Vec::new(),
            chunk_cache: ChunkCache::default(),
        }
    }

    /// Borrows the input-to-hidden weights (`4H × I`).
    pub fn weight_ih(&self) -> &Matrix {
        &self.w_ih
    }

    /// Borrows the hidden-to-hidden weights (`4H × H`).
    pub fn weight_hh(&self) -> &Matrix {
        &self.w_hh
    }

    /// Borrows the combined gate bias (length `4H`).
    pub fn bias(&self) -> &[f32] {
        &self.b
    }

    /// Input feature dimension.
    pub fn input_dim(&self) -> usize {
        self.w_ih.cols()
    }

    /// Hidden-state (output) dimension.
    pub fn output_dim(&self) -> usize {
        self.hidden
    }

    /// Number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.w_ih.len() + self.w_hh.len() + self.b.len()
    }

    fn step(&self, x: &Step, h_prev: &Step, c_prev: &Step) -> (Step, Step, StepCache) {
        let h = self.hidden;
        let mut z = self.w_ih.matvec(x);
        let zh = self.w_hh.matvec(h_prev);
        for ((zv, &hv), &bv) in z.iter_mut().zip(&zh).zip(&self.b) {
            *zv += hv + bv;
        }
        let mut i = vec![0.0; h];
        let mut f = vec![0.0; h];
        let mut g = vec![0.0; h];
        let mut o = vec![0.0; h];
        for k in 0..h {
            i[k] = sigmoid(z[k]);
            f[k] = sigmoid(z[h + k]);
            g[k] = z[2 * h + k].tanh();
            o[k] = sigmoid(z[3 * h + k]);
        }
        let mut c = vec![0.0; h];
        let mut tanh_c = vec![0.0; h];
        let mut h_out = vec![0.0; h];
        for k in 0..h {
            c[k] = f[k] * c_prev[k] + i[k] * g[k];
            tanh_c[k] = c[k].tanh();
            h_out[k] = o[k] * tanh_c[k];
        }
        let cache = StepCache {
            x: x.clone(),
            h_prev: h_prev.clone(),
            c_prev: c_prev.clone(),
            i,
            f,
            g,
            o,
            tanh_c,
        };
        (h_out, c, cache)
    }

    /// Inference-mode forward pass over a sequence; returns hidden states
    /// for every timestep. No caches are written.
    pub fn infer(&self, xs: &[Step]) -> Sequence {
        let mut h = vec![0.0; self.hidden];
        let mut c = vec![0.0; self.hidden];
        let mut out = Vec::with_capacity(xs.len());
        for x in xs {
            let (h_new, c_new, _) = self.step(x, &h, &c);
            h = h_new;
            c = c_new;
            out.push(h.clone());
        }
        out
    }

    /// Batched inference over `B` sequences through the *same* parameters.
    ///
    /// Where [`Lstm::infer`] performs two matrix–vector products per
    /// timestep per sequence, this fuses the gate pre-activations of all
    /// sequences that are still active at timestep `t` into two
    /// matrix–matrix products (`X_t · W_ihᵀ` and `H_{t-1} · W_hhᵀ`), so the
    /// weight matrices stream through memory once per timestep instead of
    /// once per query. Per-element accumulation order is unchanged, so the
    /// returned hidden states are bit-identical to running [`Lstm::infer`]
    /// on each sequence alone, and the FLOP count recorded for platform
    /// cost simulation is exactly the sum of the unbatched counts.
    ///
    /// Sequences may have different lengths (shorter ones simply drop out
    /// of the active set). Returns one hidden-state sequence per input.
    pub fn infer_batch<S: AsRef<[Step]>>(&self, xs: &[S]) -> Vec<Sequence> {
        let b = xs.len();
        let h = self.hidden;
        let input_dim = self.input_dim();
        let max_t = xs.iter().map(|s| s.as_ref().len()).max().unwrap_or(0);
        let mut hs = Matrix::zeros(b, h);
        let mut cs = Matrix::zeros(b, h);
        let mut out: Vec<Sequence> =
            xs.iter().map(|s| Vec::with_capacity(s.as_ref().len())).collect();
        for t in 0..max_t {
            let active: Vec<usize> = (0..b).filter(|&i| t < xs[i].as_ref().len()).collect();
            let rows = active.len();
            let mut x_t = Matrix::zeros(rows, input_dim);
            let mut h_prev = Matrix::zeros(rows, h);
            for (r, &i) in active.iter().enumerate() {
                x_t.row_mut(r).copy_from_slice(&xs[i].as_ref()[t]);
                h_prev.row_mut(r).copy_from_slice(hs.row(i));
            }
            let mut z = x_t.matmul_transpose(&self.w_ih);
            let zh = h_prev.matmul_transpose(&self.w_hh);
            for r in 0..rows {
                let z_row = z.row_mut(r);
                for ((zv, &hv), &bv) in z_row.iter_mut().zip(zh.row(r)).zip(&self.b) {
                    *zv += hv + bv;
                }
            }
            for (r, &i) in active.iter().enumerate() {
                let z_row = z.row(r);
                let c_row = cs.row_mut(i);
                let mut h_new = vec![0.0; h];
                for k in 0..h {
                    let ig = sigmoid(z_row[k]);
                    let fg = sigmoid(z_row[h + k]);
                    let gg = z_row[2 * h + k].tanh();
                    let og = sigmoid(z_row[3 * h + k]);
                    let c = fg * c_row[k] + ig * gg;
                    c_row[k] = c;
                    h_new[k] = og * c.tanh();
                }
                hs.row_mut(i).copy_from_slice(&h_new);
                out[i].push(h_new);
            }
        }
        out
    }

    /// Training-mode forward pass; caches activations for [`Lstm::backward`].
    pub fn forward(&mut self, xs: &Sequence) -> Sequence {
        let mut h = vec![0.0; self.hidden];
        let mut c = vec![0.0; self.hidden];
        let mut out = Vec::with_capacity(xs.len());
        self.cache.clear();
        for x in xs {
            let (h_new, c_new, cache) = self.step(x, &h, &c);
            h = h_new;
            c = c_new;
            self.cache.push(cache);
            out.push(h.clone());
        }
        out
    }

    /// Lockstep training-mode forward pass over a packed chunk.
    ///
    /// The fused-batch analogue of [`Lstm::forward`]: the input-to-hidden
    /// pre-activations of the whole chunk run as one GEMM up front (the
    /// input side has no recurrent dependence on `t`), and per timestep
    /// only the recurrent half runs — one GEMM over the active samples'
    /// previous hidden states (the [`Lstm::infer_batch`] discipline). Flat
    /// activation caches are written for [`Lstm::backward_chunk_packed`].
    /// Hidden states, caches and recorded FLOPs are bit-identical to
    /// calling [`Lstm::forward`] on each sequence alone. Sequences may be
    /// ragged; shorter ones drop out of the active set.
    pub(crate) fn forward_chunk_packed(&mut self, x: ChunkBatch) -> ChunkBatch {
        let ChunkBatch { lens, offsets, rows: x_all } = x;
        let b = lens.len();
        let h = self.hidden;
        let total = offsets[b];
        let max_t = lens.iter().copied().max().unwrap_or(0);

        // Each output row of the fused input GEMM is the same `x · W_ihᵀ`
        // dot product the per-timestep path computes, and the recorded
        // FLOPs sum to the identical per-timestep total.
        let z_ih = x_all.matmul_transpose(&self.w_ih);

        let mut gates = vec![0.0f32; total * 4 * h];
        let mut c_all = vec![0.0f32; total * h];
        let mut tanh_c_all = vec![0.0f32; total * h];
        let mut h_all = vec![0.0f32; total * h];
        let mut active: Vec<usize> = Vec::with_capacity(b);
        for t in 0..max_t {
            active.clear();
            active.extend((0..b).filter(|&i| t < lens[i]));
            let rows = active.len();
            // Only the recurrent half still advances timestep by timestep:
            // pack the active samples' previous hidden states and run one
            // GEMM against `W_hh`.
            let mut h_prev = Matrix::zeros(rows, h);
            if t > 0 {
                for (r, &i) in active.iter().enumerate() {
                    let prev = (offsets[i] + t - 1) * h;
                    h_prev.row_mut(r).copy_from_slice(&h_all[prev..prev + h]);
                }
            }
            let zh = h_prev.matmul_transpose(&self.w_hh);
            for (r, &i) in active.iter().enumerate() {
                let row = offsets[i] + t;
                let zi = z_ih.row(row);
                let zh_row = zh.row(r);
                let gate_row = &mut gates[row * 4 * h..(row + 1) * 4 * h];
                let (c_done, c_rest) = c_all.split_at_mut(row * h);
                let c_row = &mut c_rest[..h];
                let c_prev: &[f32] = if t == 0 { &[] } else { &c_done[(row - 1) * h..] };
                let tanh_row = &mut tanh_c_all[row * h..(row + 1) * h];
                let h_row = &mut h_all[row * h..(row + 1) * h];
                // `zi + (zh + b)` — the sequential path's `z += zh + b`
                // grouping; f32 addition is not associative.
                for k in 0..h {
                    let gi = sigmoid(zi[k] + (zh_row[k] + self.b[k]));
                    let gf = sigmoid(zi[h + k] + (zh_row[h + k] + self.b[h + k]));
                    let gg = (zi[2 * h + k] + (zh_row[2 * h + k] + self.b[2 * h + k])).tanh();
                    let go = sigmoid(zi[3 * h + k] + (zh_row[3 * h + k] + self.b[3 * h + k]));
                    let cp = if t == 0 { 0.0 } else { c_prev[k] };
                    let c = gf * cp + gi * gg;
                    let tc = c.tanh();
                    gate_row[k] = gi;
                    gate_row[h + k] = gf;
                    gate_row[2 * h + k] = gg;
                    gate_row[3 * h + k] = go;
                    c_row[k] = c;
                    tanh_row[k] = tc;
                    h_row[k] = go * tc;
                }
            }
        }
        let out = ChunkBatch {
            lens: lens.clone(),
            offsets: offsets.clone(),
            rows: Matrix::from_vec(total, h, h_all.clone()),
        };
        self.chunk_cache =
            ChunkCache { lens, offsets, x: x_all, gates, c: c_all, tanh_c: tanh_c_all, h: h_all };
        out
    }

    /// Lockstep backpropagation through time over a packed chunk.
    ///
    /// The fused-batch analogue of [`Lstm::backward`]: the per-timestep
    /// gate gradients of all active samples are packed into one `DZ_t`
    /// matrix so the input- and hidden-gradient products run as two GEMMs
    /// per timestep, and the weight-gradient accumulation runs as one
    /// fused [`Matrix::rank_updates`] per weight matrix with contributions
    /// ordered exactly as the sequential path applies them (sample-major,
    /// timestep-descending). Parameter gradients, input gradients and
    /// recorded FLOPs are bit-identical to calling [`Lstm::backward`]
    /// once per sample in chunk order.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Lstm::forward_chunk_packed`] or with
    /// mismatched gradient shapes.
    pub(crate) fn backward_chunk_packed(&mut self, grad: ChunkBatch) -> ChunkBatch {
        let b = grad.samples();
        let cache = &self.chunk_cache;
        assert_eq!(
            grad.lens, cache.lens,
            "backward_chunk_packed gradient lengths do not match cached chunk"
        );
        let h = self.hidden;
        let total = cache.offsets[b];
        if self.trainable {
            self.grad_w_ih.get_or_insert_with(|| Matrix::zeros(4 * h, self.w_ih.cols()));
            self.grad_w_hh.get_or_insert_with(|| Matrix::zeros(4 * h, h));
            if self.grad_b.len() != self.b.len() {
                self.grad_b = vec![0.0; self.b.len()];
            }
        }
        let max_t = grad.lens.iter().copied().max().unwrap_or(0);
        // Gate gradients for the whole chunk, packed like the forward
        // caches (`offsets[i] + t` rows); filled timestep-descending, read
        // back sample-major by the input-gradient GEMM and weight-gradient
        // fusion below.
        let mut dz_all = Matrix::zeros(total, 4 * h);
        let mut dh_carry = Matrix::zeros(b, h);
        let mut dc_carry = Matrix::zeros(b, h);
        let mut active: Vec<usize> = Vec::with_capacity(b);
        let cache = &self.chunk_cache;
        for t in (0..max_t).rev() {
            active.clear();
            active.extend((0..b).filter(|&i| t < cache.lens[i]));
            let rows = active.len();
            let mut dz_t = Matrix::zeros(rows, 4 * h);
            for (r, &i) in active.iter().enumerate() {
                let row = cache.offsets[i] + t;
                let gate_row = &cache.gates[row * 4 * h..(row + 1) * 4 * h];
                let tanh_row = &cache.tanh_c[row * h..(row + 1) * h];
                let c_prev: &[f32] = if t == 0 { &[] } else { &cache.c[(row - 1) * h..row * h] };
                let dz = dz_t.row_mut(r);
                let dh_row = dh_carry.row_mut(i);
                let dc_row = dc_carry.row_mut(i);
                let g_row = grad.rows.row(row);
                for k in 0..h {
                    let (gi, gf, gg, go) =
                        (gate_row[k], gate_row[h + k], gate_row[2 * h + k], gate_row[3 * h + k]);
                    let dh = g_row[k] + dh_row[k];
                    let d_o = dh * tanh_row[k];
                    let mut dc = dh * go * (1.0 - tanh_row[k] * tanh_row[k]);
                    dc += dc_row[k];
                    let di = dc * gg;
                    let dg = dc * gi;
                    let df = dc * if t == 0 { 0.0 } else { c_prev[k] };
                    dz[k] = di * gi * (1.0 - gi);
                    dz[h + k] = df * gf * (1.0 - gf);
                    dz[2 * h + k] = dg * (1.0 - gg * gg);
                    dz[3 * h + k] = d_o * go * (1.0 - go);
                    dc_row[k] = dc * gf;
                }
            }
            // Input and hidden gradients for all active samples in two
            // GEMMs. `DZ_t · W` walks each row's `k` ascending with the
            // same zero-skip as `matvec_transpose(dz)`, so the bits match
            // the sequential per-sample products.
            // Only the hidden gradient is recurrent (needed at `t - 1`);
            // the input gradients are deferred to one chunk-wide GEMM
            // after the loop.
            let dh_t = dz_t.matmul(&self.w_hh);
            for (r, &i) in active.iter().enumerate() {
                let row = cache.offsets[i] + t;
                dh_carry.row_mut(i).copy_from_slice(dh_t.row(r));
                dz_all.row_mut(row).copy_from_slice(dz_t.row(r));
            }
        }
        // Input gradients for every timestep of every sample in a single
        // GEMM: row `offsets[i] + t` of `DZ · W_ih` is the same k-ascending
        // zero-skipping dot the sequential `matvec_transpose(dz)` computes,
        // and the result lands already in packed order.
        let dx_all = dz_all.matmul(&self.w_ih);
        if self.trainable {
            // Sequential training applies rank-1 gradient updates sample by
            // sample, each with `t` descending; feed the fused kernel the
            // contributions in exactly that order.
            let zero_h = vec![0.0f32; h];
            let mut ih_updates = Vec::with_capacity(total);
            let mut hh_updates = Vec::with_capacity(total);
            for i in 0..b {
                for t in (0..cache.lens[i]).rev() {
                    let row = cache.offsets[i] + t;
                    let dz = dz_all.row(row);
                    ih_updates.push((dz, cache.x.row(row)));
                    let h_prev: &[f32] =
                        if t == 0 { &zero_h } else { &cache.h[(row - 1) * h..row * h] };
                    hh_updates.push((dz, h_prev));
                }
            }
            self.grad_w_ih
                .as_mut()
                .expect("grad buffer initialized above")
                .rank_updates(1.0, &ih_updates);
            self.grad_w_hh
                .as_mut()
                .expect("grad buffer initialized above")
                .rank_updates(1.0, &hh_updates);
            for i in 0..b {
                for t in (0..cache.lens[i]).rev() {
                    let row = cache.offsets[i] + t;
                    let dz = dz_all.row(row);
                    for (db, &dzv) in self.grad_b.iter_mut().zip(dz) {
                        *db += dzv;
                    }
                }
            }
        }
        ChunkBatch { lens: grad.lens, offsets: grad.offsets, rows: dx_all }
    }

    /// Backpropagation through time.
    ///
    /// Takes one output gradient per timestep (zero vectors for steps the
    /// loss ignores), accumulates parameter gradients when trainable, and
    /// returns the gradient with respect to each input step.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Lstm::forward`] or with a mismatched number
    /// of gradient steps.
    pub fn backward(&mut self, grad_out: &Sequence) -> Sequence {
        assert_eq!(
            grad_out.len(),
            self.cache.len(),
            "backward called with {} grads but {} cached steps",
            grad_out.len(),
            self.cache.len()
        );
        let h = self.hidden;
        if self.trainable {
            self.grad_w_ih.get_or_insert_with(|| Matrix::zeros(4 * h, self.w_ih.cols()));
            self.grad_w_hh.get_or_insert_with(|| Matrix::zeros(4 * h, h));
            if self.grad_b.len() != self.b.len() {
                self.grad_b = vec![0.0; self.b.len()];
            }
        }
        let mut dx_all = vec![Vec::new(); grad_out.len()];
        let mut dh_carry = vec![0.0; h];
        let mut dc_carry = vec![0.0; h];
        for t in (0..grad_out.len()).rev() {
            let cache = &self.cache[t];
            let mut dz = vec![0.0; 4 * h];
            for k in 0..h {
                let dh = grad_out[t][k] + dh_carry[k];
                let d_o = dh * cache.tanh_c[k];
                let mut dc = dh * cache.o[k] * (1.0 - cache.tanh_c[k] * cache.tanh_c[k]);
                dc += dc_carry[k];
                let di = dc * cache.g[k];
                let dg = dc * cache.i[k];
                let df = dc * cache.c_prev[k];
                dz[k] = di * cache.i[k] * (1.0 - cache.i[k]);
                dz[h + k] = df * cache.f[k] * (1.0 - cache.f[k]);
                dz[2 * h + k] = dg * (1.0 - cache.g[k] * cache.g[k]);
                dz[3 * h + k] = d_o * cache.o[k] * (1.0 - cache.o[k]);
                dc_carry[k] = dc * cache.f[k];
            }
            if self.trainable {
                self.grad_w_ih
                    .as_mut()
                    .expect("grad buffer initialized above")
                    .rank_one_update(1.0, &dz, &cache.x);
                self.grad_w_hh.as_mut().expect("grad buffer initialized above").rank_one_update(
                    1.0,
                    &dz,
                    &cache.h_prev,
                );
                for (db, &dzv) in self.grad_b.iter_mut().zip(&dz) {
                    *db += dzv;
                }
            }
            dx_all[t] = self.w_ih.matvec_transpose(&dz);
            dh_carry = self.w_hh.matvec_transpose(&dz);
        }
        dx_all
    }

    /// Visits `(param, grad)` pairs as flat slices; used by optimizers.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        if !self.trainable {
            return;
        }
        if let Some(g) = self.grad_w_ih.as_mut() {
            f(self.w_ih.as_mut_slice(), g.as_mut_slice());
        }
        if let Some(g) = self.grad_w_hh.as_mut() {
            f(self.w_hh.as_mut_slice(), g.as_mut_slice());
        }
        if !self.grad_b.is_empty() {
            f(&mut self.b, &mut self.grad_b);
        }
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        if let Some(g) = self.grad_w_ih.as_mut() {
            g.fill_zero();
        }
        if let Some(g) = self.grad_w_hh.as_mut() {
            g.fill_zero();
        }
        self.grad_b.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn lstm(input: usize, hidden: usize) -> Lstm {
        Lstm::new(input, hidden, &mut StdRng::seed_from_u64(17))
    }

    fn scalar_objective(l: &Lstm, xs: &Sequence) -> f32 {
        // Sum of the final hidden state: a simple scalar loss for checking
        // gradients by finite differences.
        l.infer(xs).last().expect("nonempty sequence").iter().sum()
    }

    #[test]
    fn output_shape_matches_sequence() {
        let l = lstm(5, 7);
        let xs = vec![vec![0.1; 5]; 3];
        let hs = l.infer(&xs);
        assert_eq!(hs.len(), 3);
        assert!(hs.iter().all(|h| h.len() == 7));
    }

    #[test]
    fn hidden_states_are_bounded() {
        let l = lstm(4, 6);
        let xs = vec![vec![100.0; 4]; 4];
        for h in l.infer(&xs) {
            assert!(h.iter().all(|v| v.abs() <= 1.0), "tanh·sigmoid bounds |h| by 1");
        }
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut l = lstm(3, 4);
        let xs = vec![vec![0.5, -0.3, 0.8], vec![-0.1, 0.9, 0.2]];
        let hs = l.forward(&xs);
        let t_last = hs.len() - 1;
        let mut grads = vec![vec![0.0; 4]; xs.len()];
        grads[t_last] = vec![1.0; 4];
        let dx = l.backward(&grads);
        let eps = 1e-3;
        for t in 0..xs.len() {
            for j in 0..3 {
                let mut plus = xs.clone();
                plus[t][j] += eps;
                let mut minus = xs.clone();
                minus[t][j] -= eps;
                let fd = (scalar_objective(&l, &plus) - scalar_objective(&l, &minus)) / (2.0 * eps);
                assert!(
                    (dx[t][j] - fd).abs() < 5e-3,
                    "input grad t={t} j={j}: analytic {} vs fd {fd}",
                    dx[t][j]
                );
            }
        }
    }

    #[test]
    fn parameter_gradient_matches_finite_difference() {
        let mut l = lstm(2, 3);
        let xs = vec![vec![0.7, -0.4], vec![0.2, 0.1]];
        l.forward(&xs);
        let mut grads = vec![vec![0.0; 3]; 2];
        grads[1] = vec![1.0; 3];
        l.backward(&grads);

        // Probe a handful of w_ih entries by finite differences.
        let eps = 1e-3;
        let mut checked = 0;
        let mut analytic = Vec::new();
        l.visit_params(&mut |_, g| analytic.push(g.to_vec()));
        let ga = analytic[0].clone(); // w_ih grads, row-major 4H x I
        for idx in [0usize, 5, 11, 17, 23] {
            let (r, c) = (idx / 2, idx % 2);
            let probe = |delta: f32, l: &mut Lstm| {
                let mut w = l.w_ih.clone();
                w[(r, c)] += delta;
                std::mem::swap(&mut l.w_ih, &mut w);
                let v = scalar_objective(l, &xs);
                std::mem::swap(&mut l.w_ih, &mut w);
                v
            };
            let fd = (probe(eps, &mut l) - probe(-eps, &mut l)) / (2.0 * eps);
            assert!(
                (ga[idx] - fd).abs() < 5e-3,
                "param grad idx={idx}: analytic {} vs fd {fd}",
                ga[idx]
            );
            checked += 1;
        }
        assert_eq!(checked, 5);
    }

    #[test]
    fn frozen_lstm_accumulates_no_grads() {
        let mut l = lstm(2, 2);
        l.trainable = false;
        let xs = vec![vec![1.0, -1.0]];
        l.forward(&xs);
        let dx = l.backward(&vec![vec![1.0, 1.0]]);
        assert_eq!(dx.len(), 1, "input grads still flow through frozen layers");
        let mut visited = 0;
        l.visit_params(&mut |_, _| visited += 1);
        assert_eq!(visited, 0);
    }

    #[test]
    fn forget_bias_initialized_to_one() {
        let l = lstm(2, 4);
        assert!(l.b[4..8].iter().all(|&v| v == 1.0));
        assert!(l.b[0..4].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn batched_inference_is_bit_identical_to_sequential() {
        let l = lstm(4, 6);
        // Ragged lengths exercise the active-set handling.
        let seqs: Vec<Sequence> = (0..5)
            .map(|i| {
                (0..=i).map(|t| (0..4).map(|j| ((i + t * 3 + j) as f32).sin()).collect()).collect()
            })
            .collect();
        let batched = l.infer_batch(&seqs);
        for (seq, batch_out) in seqs.iter().zip(&batched) {
            assert_eq!(&l.infer(seq), batch_out, "batched hidden states must match exactly");
        }
    }

    #[test]
    fn empty_batch_yields_no_outputs() {
        let l = lstm(3, 4);
        let none: Vec<Sequence> = Vec::new();
        assert!(l.infer_batch(&none).is_empty());
    }

    #[test]
    fn deterministic_construction() {
        let a = lstm(3, 5);
        let b = lstm(3, 5);
        assert_eq!(a.w_ih, b.w_ih);
        assert_eq!(a.w_hh, b.w_hh);
    }
}

//! Inverted dropout applied between recurrent layers.

use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::chunk::ChunkBatch;
use crate::{Sequence, Step};

/// Inverted dropout: active during training, identity at inference.
///
/// The paper trains its general model with a dropout rate of 0.1 between
/// the LSTM layers (§IV-A). "Inverted" scaling (dividing survivors by the
/// keep probability at train time) keeps inference a pure identity, so the
/// deployed personalized model has no stochastic behaviour an adversary
/// could average away.
///
/// Masks are drawn from a counter-based seed (`seed + forward index`) so
/// the layer is `Clone` and deterministic without carrying RNG state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dropout {
    rate: f32,
    seed: u64,
    #[serde(skip)]
    draws: u64,
    #[serde(skip)]
    masks: Vec<Vec<f32>>,
    /// Flat mask cache written by [`Dropout::forward_chunk_packed`]
    /// (`None` when the last packed forward was an identity pass at rate
    /// zero), plus the chunk's per-sample lengths for shape checking.
    #[serde(skip)]
    chunk_masks: Option<Vec<f32>>,
    #[serde(skip)]
    chunk_lens: Vec<usize>,
}

impl Dropout {
    /// Creates a dropout layer dropping each activation with probability
    /// `rate`, drawing masks from `seed`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= rate < 1`.
    pub fn new(rate: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&rate), "dropout rate must be in [0, 1), got {rate}");
        Self { rate, seed, draws: 0, masks: Vec::new(), chunk_masks: None, chunk_lens: Vec::new() }
    }

    /// The configured drop probability.
    pub fn rate(&self) -> f32 {
        self.rate
    }

    /// Inference-mode forward pass: the identity.
    pub fn infer(&self, xs: &[Step]) -> Sequence {
        xs.to_vec()
    }

    /// Batched inference-mode forward pass: the identity on every sequence.
    pub fn infer_batch<S: AsRef<[Step]>>(&self, xs: &[S]) -> Vec<Sequence> {
        xs.iter().map(|s| s.as_ref().to_vec()).collect()
    }

    /// Training-mode forward pass; samples and caches a mask per timestep.
    pub fn forward(&mut self, xs: &Sequence) -> Sequence {
        if self.rate == 0.0 {
            self.masks = xs.iter().map(|x| vec![1.0; x.len()]).collect();
            return xs.clone();
        }
        let keep = 1.0 - self.rate;
        let inv_keep = 1.0 / keep;
        self.masks.clear();
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(self.draws));
        self.draws = self.draws.wrapping_add(1);
        let mut out = Vec::with_capacity(xs.len());
        for x in xs {
            let mask: Vec<f32> = (0..x.len())
                .map(|_| if rng.random_range(0.0..1.0) < keep { inv_keep } else { 0.0 })
                .collect();
            out.push(x.iter().zip(&mask).map(|(&v, &m)| v * m).collect());
            self.masks.push(mask);
        }
        out
    }

    /// Identity forward pass that still primes the mask cache (with ones),
    /// so a later [`Dropout::backward`] passes gradients through unchanged.
    ///
    /// Used when a cache-writing forward pass must reproduce *inference*
    /// semantics — e.g. when an attack differentiates through the deployed
    /// model, which has dropout disabled.
    pub fn forward_identity(&mut self, xs: &Sequence) -> Sequence {
        self.masks = xs.iter().map(|x| vec![1.0; x.len()]).collect();
        xs.clone()
    }

    /// Lockstep training-mode forward pass over a packed chunk, masking
    /// the batch in place.
    ///
    /// Each sample consumes exactly one counter-based mask draw in chunk
    /// order — the same draw indices the sequential path's per-sample
    /// [`Dropout::forward`] calls would consume (the backward pass draws
    /// nothing, so running all forwards first leaves every sample's draw
    /// index unchanged). A zero rate consumes no draws and passes the
    /// batch through untouched, matching [`Dropout::forward`]. Masked
    /// outputs are bit-identical to the sequential path.
    pub(crate) fn forward_chunk_packed(&mut self, mut x: ChunkBatch) -> ChunkBatch {
        self.chunk_lens = x.lens.clone();
        if self.rate == 0.0 {
            self.chunk_masks = None;
            return x;
        }
        let keep = 1.0 - self.rate;
        let inv_keep = 1.0 / keep;
        let dim = x.rows.cols();
        let mut masks = vec![0.0f32; x.total() * dim];
        for i in 0..x.lens.len() {
            let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(self.draws));
            self.draws = self.draws.wrapping_add(1);
            for t in 0..x.lens[i] {
                let row = x.offsets[i] + t;
                let mask = &mut masks[row * dim..(row + 1) * dim];
                for mv in mask.iter_mut() {
                    *mv = if rng.random_range(0.0..1.0) < keep { inv_keep } else { 0.0 };
                }
                for (v, &mv) in x.rows.row_mut(row).iter_mut().zip(mask.iter()) {
                    *v *= mv;
                }
            }
        }
        self.chunk_masks = Some(masks);
        x
    }

    /// Lockstep backward pass through the flat masks cached by
    /// [`Dropout::forward_chunk_packed`], scaling the gradient batch in
    /// place.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Dropout::forward_chunk_packed`] or with
    /// mismatched gradient shapes.
    pub(crate) fn backward_chunk_packed(&mut self, mut grad: ChunkBatch) -> ChunkBatch {
        assert_eq!(
            grad.lens, self.chunk_lens,
            "backward_chunk_packed gradient lengths do not match cached chunk"
        );
        if let Some(masks) = &self.chunk_masks {
            assert_eq!(grad.rows.len(), masks.len(), "gradient width differs from cached masks");
            for (g, &mv) in grad.rows.as_mut_slice().iter_mut().zip(masks) {
                *g *= mv;
            }
        }
        grad
    }

    /// Backpropagates through the cached masks.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Dropout::forward`] or with a mismatched
    /// number of gradient steps.
    pub fn backward(&mut self, grad_out: &Sequence) -> Sequence {
        assert_eq!(
            grad_out.len(),
            self.masks.len(),
            "backward called with {} grads but {} cached masks",
            grad_out.len(),
            self.masks.len()
        );
        grad_out
            .iter()
            .zip(&self.masks)
            .map(|(g, m)| g.iter().zip(m).map(|(&gv, &mv)| gv * mv).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_is_identity() {
        let d = Dropout::new(0.5, 1);
        let xs = vec![vec![1.0, 2.0, 3.0]];
        assert_eq!(d.infer(&xs), xs);
    }

    #[test]
    fn zero_rate_is_identity_in_training() {
        let mut d = Dropout::new(0.0, 1);
        let xs = vec![vec![1.0, -2.0]];
        assert_eq!(d.forward(&xs), xs);
    }

    #[test]
    fn surviving_activations_are_scaled() {
        let mut d = Dropout::new(0.5, 42);
        let xs = vec![vec![1.0; 1000]];
        let ys = d.forward(&xs);
        for &y in &ys[0] {
            assert!(y == 0.0 || (y - 2.0).abs() < 1e-6, "unexpected value {y}");
        }
        let kept = ys[0].iter().filter(|&&v| v != 0.0).count();
        assert!((300..700).contains(&kept), "kept {kept} of 1000 at rate 0.5");
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 7);
        let xs = vec![vec![1.0; 64]];
        let ys = d.forward(&xs);
        let gs = d.backward(&vec![vec![1.0; 64]]);
        for (y, g) in ys[0].iter().zip(&gs[0]) {
            assert_eq!(*y == 0.0, *g == 0.0, "mask must match between passes");
        }
    }

    #[test]
    #[should_panic(expected = "dropout rate must be in [0, 1)")]
    fn rejects_rate_one() {
        let _ = Dropout::new(1.0, 0);
    }
}

//! The [`Layer`] enum: closed set of layer types composing a model.

use serde::{Deserialize, Serialize};

use crate::chunk::ChunkBatch;
use crate::{Dropout, Linear, Lstm, Sequence, Step};

/// One layer of a [`crate::SequenceModel`].
///
/// A closed enum (rather than a trait object) keeps models serializable,
/// cloneable and cheap to dispatch. The paper's architectures only ever
/// compose these three layer kinds plus the inference-time temperature
/// scale, which lives on the model head (see
/// [`crate::SequenceModel::set_temperature`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Layer {
    /// Recurrent LSTM layer.
    Lstm(Lstm),
    /// Fully-connected layer applied per timestep.
    Linear(Linear),
    /// Inverted dropout (train-time only).
    Dropout(Dropout),
}

impl Layer {
    /// Inference-mode forward pass.
    pub fn infer(&self, xs: &[Step]) -> Sequence {
        match self {
            Layer::Lstm(l) => l.infer(xs),
            Layer::Linear(l) => l.infer(xs),
            Layer::Dropout(d) => d.infer(xs),
        }
    }

    /// Batched inference over independent sequences sharing this layer's
    /// parameters; see [`Lstm::infer_batch`]. Outputs are bit-identical to
    /// calling [`Layer::infer`] on each sequence alone.
    pub fn infer_batch<S: AsRef<[Step]>>(&self, xs: &[S]) -> Vec<Sequence> {
        match self {
            Layer::Lstm(l) => l.infer_batch(xs),
            Layer::Linear(l) => l.infer_batch(xs),
            Layer::Dropout(d) => d.infer_batch(xs),
        }
    }

    /// Training-mode forward pass (caches activations).
    pub fn forward(&mut self, xs: &Sequence) -> Sequence {
        match self {
            Layer::Lstm(l) => l.forward(xs),
            Layer::Linear(l) => l.forward(xs),
            Layer::Dropout(d) => d.forward(xs),
        }
    }

    /// Backward pass; returns input gradients.
    pub fn backward(&mut self, grad_out: &Sequence) -> Sequence {
        match self {
            Layer::Lstm(l) => l.backward(grad_out),
            Layer::Linear(l) => l.backward(grad_out),
            Layer::Dropout(d) => d.backward(grad_out),
        }
    }

    /// Lockstep training-mode forward pass over a packed chunk through the
    /// fused batch kernels; bit-identical (outputs, caches and recorded
    /// FLOPs) to calling [`Layer::forward`] once per sample in chunk
    /// order. See [`Lstm::forward_chunk_packed`].
    pub(crate) fn forward_chunk_packed(&mut self, x: ChunkBatch) -> ChunkBatch {
        match self {
            Layer::Lstm(l) => l.forward_chunk_packed(x),
            Layer::Linear(l) => l.forward_chunk_packed(x),
            Layer::Dropout(d) => d.forward_chunk_packed(x),
        }
    }

    /// Lockstep backward pass over a packed chunk; bit-identical gradients
    /// and recorded FLOPs to calling [`Layer::backward`] once per sample
    /// in chunk order. See [`Lstm::backward_chunk_packed`].
    pub(crate) fn backward_chunk_packed(&mut self, grad: ChunkBatch) -> ChunkBatch {
        match self {
            Layer::Lstm(l) => l.backward_chunk_packed(grad),
            Layer::Linear(l) => l.backward_chunk_packed(grad),
            Layer::Dropout(d) => d.backward_chunk_packed(grad),
        }
    }

    /// Visits `(param, grad)` slices of trainable parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        match self {
            Layer::Lstm(l) => l.visit_params(f),
            Layer::Linear(l) => l.visit_params(f),
            Layer::Dropout(_) => {}
        }
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        match self {
            Layer::Lstm(l) => l.zero_grad(),
            Layer::Linear(l) => l.zero_grad(),
            Layer::Dropout(_) => {}
        }
    }

    /// Whether optimizers may update this layer.
    pub fn is_trainable(&self) -> bool {
        match self {
            Layer::Lstm(l) => l.trainable,
            Layer::Linear(l) => l.trainable,
            Layer::Dropout(_) => false,
        }
    }

    /// Freezes or unfreezes the layer's parameters.
    ///
    /// Freezing a [`Layer::Dropout`] is a no-op: it has no parameters.
    pub fn set_trainable(&mut self, trainable: bool) {
        match self {
            Layer::Lstm(l) => l.trainable = trainable,
            Layer::Linear(l) => l.trainable = trainable,
            Layer::Dropout(_) => {}
        }
    }

    /// Number of scalar parameters (0 for dropout).
    pub fn param_count(&self) -> usize {
        match self {
            Layer::Lstm(l) => l.param_count(),
            Layer::Linear(l) => l.param_count(),
            Layer::Dropout(_) => 0,
        }
    }

    /// Short human-readable layer description (e.g. `lstm(64->128)`).
    pub fn describe(&self) -> String {
        match self {
            Layer::Lstm(l) => format!("lstm({}->{})", l.input_dim(), l.output_dim()),
            Layer::Linear(l) => format!("linear({}->{})", l.input_dim(), l.output_dim()),
            Layer::Dropout(d) => format!("dropout({})", d.rate()),
        }
    }
}

impl From<Lstm> for Layer {
    fn from(l: Lstm) -> Self {
        Layer::Lstm(l)
    }
}

impl From<Linear> for Layer {
    fn from(l: Linear) -> Self {
        Layer::Linear(l)
    }
}

impl From<Dropout> for Layer {
    fn from(d: Dropout) -> Self {
        Layer::Dropout(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn describe_is_informative() {
        let mut rng = StdRng::seed_from_u64(0);
        let l: Layer = Lstm::new(3, 5, &mut rng).into();
        assert_eq!(l.describe(), "lstm(3->5)");
        let l: Layer = Linear::new(5, 2, &mut rng).into();
        assert_eq!(l.describe(), "linear(5->2)");
        let l: Layer = Dropout::new(0.1, 0).into();
        assert_eq!(l.describe(), "dropout(0.1)");
    }

    #[test]
    fn dropout_is_never_trainable() {
        let mut l: Layer = Dropout::new(0.2, 0).into();
        assert!(!l.is_trainable());
        l.set_trainable(true);
        assert!(!l.is_trainable());
        assert_eq!(l.param_count(), 0);
    }

    #[test]
    fn freeze_round_trip() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut l: Layer = Linear::new(2, 2, &mut rng).into();
        assert!(l.is_trainable());
        l.set_trainable(false);
        assert!(!l.is_trainable());
        l.set_trainable(true);
        assert!(l.is_trainable());
    }
}

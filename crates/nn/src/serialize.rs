//! Binary (de)serialization of models.
//!
//! Pelican moves models between tiers: the general model is trained in the
//! cloud and *downloaded to the device* for personalization, and a
//! personalized model may be *uploaded back* for cloud deployment (§V-A).
//! [`ModelEnvelope`] is the wire format for those transfers — a compact,
//! versioned, length-prefixed binary layout (little-endian `f32` weights)
//! with no dependency on a serialization framework.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use pelican_tensor::Matrix;

use crate::{Dropout, Layer, Linear, Lstm, Postprocess, SequenceModel};

const MAGIC: &[u8; 4] = b"PLCN";
/// Version 2 added the confidence post-processing field: a deployed
/// defense (noise, rounding) is part of the model's black-box behaviour,
/// so a registry serving decoded envelopes must reproduce it exactly.
const VERSION: u16 = 2;

const TAG_LSTM: u8 = 0;
const TAG_LINEAR: u8 = 1;
const TAG_DROPOUT: u8 = 2;

const POST_NONE: u8 = 0;
const POST_GAUSSIAN: u8 = 1;
const POST_ROUND: u8 = 2;

/// Errors produced when decoding a serialized model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelCodecError {
    /// The buffer does not begin with the expected magic bytes.
    BadMagic,
    /// The format version is newer than this library understands.
    UnsupportedVersion(u16),
    /// The buffer ended before the declared content did.
    Truncated,
    /// An unknown layer tag was encountered.
    UnknownLayerTag(u8),
    /// An unknown confidence post-processing tag was encountered.
    UnknownPostprocessTag(u8),
    /// A decoded dimension or count was implausible (e.g. zero).
    InvalidDimension,
}

impl std::fmt::Display for ModelCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelCodecError::BadMagic => write!(f, "buffer is not a Pelican model envelope"),
            ModelCodecError::UnsupportedVersion(v) => {
                write!(f, "unsupported model envelope version {v}")
            }
            ModelCodecError::Truncated => write!(f, "model envelope ended unexpectedly"),
            ModelCodecError::UnknownLayerTag(t) => write!(f, "unknown layer tag {t}"),
            ModelCodecError::UnknownPostprocessTag(t) => {
                write!(f, "unknown post-processing tag {t}")
            }
            ModelCodecError::InvalidDimension => write!(f, "invalid dimension in model envelope"),
        }
    }
}

impl std::error::Error for ModelCodecError {}

/// A serialized [`SequenceModel`] ready for transfer between tiers.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelEnvelope {
    bytes: Bytes,
}

impl ModelEnvelope {
    /// Serializes a model.
    pub fn encode(model: &SequenceModel) -> Self {
        let mut buf = BytesMut::with_capacity(64 + model.param_count() * 4);
        buf.put_slice(MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_f32_le(model.temperature());
        match model.postprocess() {
            Postprocess::None => buf.put_u8(POST_NONE),
            Postprocess::GaussianNoise { sigma, seed } => {
                buf.put_u8(POST_GAUSSIAN);
                buf.put_f32_le(sigma);
                buf.put_u64_le(seed);
            }
            Postprocess::Round { decimals } => {
                buf.put_u8(POST_ROUND);
                buf.put_u32_le(decimals);
            }
        }
        buf.put_u32_le(model.layers().len() as u32);
        for layer in model.layers() {
            match layer {
                Layer::Lstm(l) => {
                    buf.put_u8(TAG_LSTM);
                    buf.put_u8(l.trainable as u8);
                    buf.put_u32_le(l.input_dim() as u32);
                    buf.put_u32_le(l.output_dim() as u32);
                    put_matrix(&mut buf, l.weight_ih());
                    put_matrix(&mut buf, l.weight_hh());
                    put_f32s(&mut buf, l.bias());
                }
                Layer::Linear(l) => {
                    buf.put_u8(TAG_LINEAR);
                    buf.put_u8(l.trainable as u8);
                    buf.put_u32_le(l.input_dim() as u32);
                    buf.put_u32_le(l.output_dim() as u32);
                    put_matrix(&mut buf, l.weight());
                    put_f32s(&mut buf, l.bias());
                }
                Layer::Dropout(d) => {
                    buf.put_u8(TAG_DROPOUT);
                    buf.put_u8(0);
                    buf.put_f32_le(d.rate());
                }
            }
        }
        Self { bytes: buf.freeze() }
    }

    /// Deserializes a model.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelCodecError`] for malformed, truncated or
    /// unsupported buffers.
    ///
    /// Dropout layers are reconstructed with a fresh mask seed: dropout is
    /// train-time-only state, irrelevant to a deployed model's behaviour.
    pub fn decode(&self) -> Result<SequenceModel, ModelCodecError> {
        let mut buf = self.bytes.clone();
        if buf.remaining() < MAGIC.len() + 2 {
            return Err(ModelCodecError::Truncated);
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(ModelCodecError::BadMagic);
        }
        let version = buf.get_u16_le();
        if version != VERSION {
            return Err(ModelCodecError::UnsupportedVersion(version));
        }
        let temperature = get_f32(&mut buf)?;
        if buf.remaining() < 1 {
            return Err(ModelCodecError::Truncated);
        }
        let postprocess = match buf.get_u8() {
            POST_NONE => Postprocess::None,
            POST_GAUSSIAN => {
                let sigma = get_f32(&mut buf)?;
                if buf.remaining() < 8 {
                    return Err(ModelCodecError::Truncated);
                }
                Postprocess::GaussianNoise { sigma, seed: buf.get_u64_le() }
            }
            POST_ROUND => Postprocess::Round { decimals: get_u32(&mut buf)? },
            other => return Err(ModelCodecError::UnknownPostprocessTag(other)),
        };
        let n_layers = get_u32(&mut buf)? as usize;
        if n_layers == 0 {
            return Err(ModelCodecError::InvalidDimension);
        }
        let mut layers = Vec::with_capacity(n_layers);
        for _ in 0..n_layers {
            if buf.remaining() < 2 {
                return Err(ModelCodecError::Truncated);
            }
            let tag = buf.get_u8();
            let trainable = buf.get_u8() != 0;
            match tag {
                TAG_LSTM => {
                    let input = get_u32(&mut buf)? as usize;
                    let hidden = get_u32(&mut buf)? as usize;
                    if input == 0 || hidden == 0 {
                        return Err(ModelCodecError::InvalidDimension);
                    }
                    let w_ih = get_matrix(&mut buf, 4 * hidden, input)?;
                    let w_hh = get_matrix(&mut buf, 4 * hidden, hidden)?;
                    let b = get_f32s(&mut buf, 4 * hidden)?;
                    let mut lstm = Lstm::from_parts(w_ih, w_hh, b);
                    lstm.trainable = trainable;
                    layers.push(Layer::Lstm(lstm));
                }
                TAG_LINEAR => {
                    let input = get_u32(&mut buf)? as usize;
                    let output = get_u32(&mut buf)? as usize;
                    if input == 0 || output == 0 {
                        return Err(ModelCodecError::InvalidDimension);
                    }
                    let w = get_matrix(&mut buf, output, input)?;
                    let b = get_f32s(&mut buf, output)?;
                    let mut linear = Linear::from_parts(w, b);
                    linear.trainable = trainable;
                    layers.push(Layer::Linear(linear));
                }
                TAG_DROPOUT => {
                    let rate = get_f32(&mut buf)?;
                    if !(0.0..1.0).contains(&rate) {
                        return Err(ModelCodecError::InvalidDimension);
                    }
                    layers.push(Layer::Dropout(Dropout::new(rate, 0)));
                }
                other => return Err(ModelCodecError::UnknownLayerTag(other)),
            }
        }
        let mut model = SequenceModel::from_layers(layers);
        model.set_temperature(temperature);
        model.set_postprocess(postprocess);
        Ok(model)
    }

    /// The envelope's size in bytes (what a device would download).
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the envelope is empty (never true for encoded models).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Borrows the raw bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Wraps raw bytes received from a peer.
    pub fn from_bytes(bytes: impl Into<Bytes>) -> Self {
        Self { bytes: bytes.into() }
    }
}

fn put_matrix(buf: &mut BytesMut, m: &Matrix) {
    put_f32s(buf, m.as_slice());
}

fn put_f32s(buf: &mut BytesMut, xs: &[f32]) {
    for &x in xs {
        buf.put_f32_le(x);
    }
}

fn get_u32(buf: &mut Bytes) -> Result<u32, ModelCodecError> {
    if buf.remaining() < 4 {
        return Err(ModelCodecError::Truncated);
    }
    Ok(buf.get_u32_le())
}

fn get_f32(buf: &mut Bytes) -> Result<f32, ModelCodecError> {
    if buf.remaining() < 4 {
        return Err(ModelCodecError::Truncated);
    }
    Ok(buf.get_f32_le())
}

fn get_f32s(buf: &mut Bytes, n: usize) -> Result<Vec<f32>, ModelCodecError> {
    if buf.remaining() < 4 * n {
        return Err(ModelCodecError::Truncated);
    }
    Ok((0..n).map(|_| buf.get_f32_le()).collect())
}

fn get_matrix(buf: &mut Bytes, rows: usize, cols: usize) -> Result<Matrix, ModelCodecError> {
    Ok(Matrix::from_vec(rows, cols, get_f32s(buf, rows * cols)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> SequenceModel {
        let mut rng = StdRng::seed_from_u64(21);
        let mut m = SequenceModel::general_lstm(5, 6, 3, 0.1, &mut rng);
        m.set_temperature(0.5);
        m.layers_mut()[0].set_trainable(false);
        m
    }

    #[test]
    fn round_trip_preserves_behaviour() {
        let m = model();
        let decoded = ModelEnvelope::encode(&m).decode().expect("round trip");
        assert_eq!(decoded.temperature(), 0.5);
        assert!(!decoded.layers()[0].is_trainable());
        let xs = vec![vec![0.3; 5], vec![-0.2; 5]];
        assert_eq!(m.logits(&xs), decoded.logits(&xs));
        assert_eq!(m.predict_proba(&xs), decoded.predict_proba(&xs));
    }

    #[test]
    fn round_trip_preserves_postprocess_defenses() {
        // A deployed defense is part of the served behaviour; cold storage
        // (the serving registry's envelope path) must not strip it.
        for post in [
            Postprocess::GaussianNoise { sigma: 0.02, seed: 77 },
            Postprocess::Round { decimals: 1 },
        ] {
            let mut m = model();
            m.set_postprocess(post);
            let decoded = ModelEnvelope::encode(&m).decode().expect("round trip");
            assert_eq!(decoded.postprocess(), post);
            let xs = vec![vec![0.4; 5], vec![0.1; 5]];
            assert_eq!(m.predict_proba(&xs), decoded.predict_proba(&xs));
        }
    }

    #[test]
    fn rejects_garbage() {
        let env = ModelEnvelope::from_bytes(vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert!(matches!(env.decode(), Err(ModelCodecError::BadMagic)));
    }

    #[test]
    fn rejects_truncation() {
        let full = ModelEnvelope::encode(&model());
        let cut = ModelEnvelope::from_bytes(full.as_bytes()[..full.len() - 5].to_vec());
        assert!(matches!(cut.decode(), Err(ModelCodecError::Truncated)));
    }

    #[test]
    fn rejects_future_version() {
        let full = ModelEnvelope::encode(&model());
        let mut bytes = full.as_bytes().to_vec();
        bytes[4] = 99; // version little-endian low byte
        assert!(matches!(
            ModelEnvelope::from_bytes(bytes).decode(),
            Err(ModelCodecError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn envelope_size_tracks_parameters() {
        let m = model();
        let env = ModelEnvelope::encode(&m);
        assert!(env.len() > m.param_count() * 4, "envelope holds all params plus header");
        assert!(env.len() < m.param_count() * 4 + 256, "overhead stays small");
    }

    #[test]
    fn error_display_is_nonempty() {
        for e in [
            ModelCodecError::BadMagic,
            ModelCodecError::UnsupportedVersion(9),
            ModelCodecError::Truncated,
            ModelCodecError::UnknownLayerTag(7),
            ModelCodecError::UnknownPostprocessTag(3),
            ModelCodecError::InvalidDimension,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}

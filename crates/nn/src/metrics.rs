//! Evaluation metrics.
//!
//! The paper reports **top-k accuracy** everywhere: "identify the top-k most
//! likely locations from the model output and assess whether the true
//! location is a subset of that" (§IV-A).

use crate::{Sample, SequenceModel};

/// Top-k accuracy over a set of per-sample score vectors.
///
/// Each element of `scored` pairs the model's class scores with the true
/// class. Returns the fraction of samples whose true class appears among
/// the `k` highest scores. Returns 0 for an empty input.
pub fn top_k_accuracy(scored: &[(Vec<f32>, usize)], k: usize) -> f64 {
    if scored.is_empty() {
        return 0.0;
    }
    let hits = scored
        .iter()
        .filter(|(scores, target)| pelican_tensor::top_k(scores, k).contains(target))
        .count();
    hits as f64 / scored.len() as f64
}

/// Accumulates top-k accuracy for several `k` values in one pass over a
/// dataset.
///
/// # Example
///
/// ```
/// use pelican_nn::TopKAccuracy;
///
/// let mut acc = TopKAccuracy::new(&[1, 3]);
/// acc.observe(&[0.1, 0.8, 0.1], 1); // top-1 hit
/// acc.observe(&[0.5, 0.3, 0.2], 2); // top-3 hit only
/// assert_eq!(acc.accuracy(1), 0.5);
/// assert_eq!(acc.accuracy(3), 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct TopKAccuracy {
    ks: Vec<usize>,
    hits: Vec<usize>,
    total: usize,
}

impl TopKAccuracy {
    /// Creates an accumulator for the given `k` values.
    ///
    /// # Panics
    ///
    /// Panics if `ks` is empty or contains 0.
    pub fn new(ks: &[usize]) -> Self {
        assert!(!ks.is_empty(), "need at least one k");
        assert!(ks.iter().all(|&k| k > 0), "k values must be positive");
        Self { ks: ks.to_vec(), hits: vec![0; ks.len()], total: 0 }
    }

    /// Records one sample's scores and true class.
    pub fn observe(&mut self, scores: &[f32], target: usize) {
        let max_k = *self.ks.iter().max().expect("ks nonempty");
        let ranked = pelican_tensor::top_k(scores, max_k);
        for (slot, &k) in self.ks.iter().enumerate() {
            if ranked.iter().take(k).any(|&c| c == target) {
                self.hits[slot] += 1;
            }
        }
        self.total += 1;
    }

    /// Accuracy at `k`, or 0 when nothing was observed.
    ///
    /// # Panics
    ///
    /// Panics if `k` was not registered at construction.
    pub fn accuracy(&self, k: usize) -> f64 {
        let slot = self
            .ks
            .iter()
            .position(|&x| x == k)
            .unwrap_or_else(|| panic!("k={k} was not registered (have {:?})", self.ks));
        if self.total == 0 {
            0.0
        } else {
            self.hits[slot] as f64 / self.total as f64
        }
    }

    /// Number of samples observed.
    pub fn total(&self) -> usize {
        self.total
    }

    /// The registered `k` values.
    pub fn ks(&self) -> &[usize] {
        &self.ks
    }
}

/// Evaluates a model's top-k accuracy on labelled samples using its
/// (temperature-scaled) confidence scores.
pub fn evaluate_top_k(model: &SequenceModel, samples: &[Sample], ks: &[usize]) -> TopKAccuracy {
    let mut acc = TopKAccuracy::new(ks);
    for s in samples {
        let p = model.predict_proba(&s.xs);
        acc.observe(&p, s.target);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_accuracy_basics() {
        let scored = vec![
            (vec![0.9, 0.1, 0.0], 0), // top-1 hit
            (vec![0.1, 0.2, 0.7], 1), // top-2 hit
            (vec![0.5, 0.4, 0.1], 2), // top-3 hit only
        ];
        assert!((top_k_accuracy(&scored, 1) - 1.0 / 3.0).abs() < 1e-9);
        assert!((top_k_accuracy(&scored, 2) - 2.0 / 3.0).abs() < 1e-9);
        assert!((top_k_accuracy(&scored, 3) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(top_k_accuracy(&[], 3), 0.0);
        let acc = TopKAccuracy::new(&[1]);
        assert_eq!(acc.accuracy(1), 0.0);
    }

    #[test]
    fn accuracy_is_monotone_in_k() {
        let mut acc = TopKAccuracy::new(&[1, 2, 3, 5]);
        let scores = [
            (vec![0.4, 0.3, 0.2, 0.05, 0.05], 3),
            (vec![0.4, 0.3, 0.2, 0.05, 0.05], 1),
            (vec![0.4, 0.3, 0.2, 0.05, 0.05], 0),
        ];
        for (s, t) in &scores {
            acc.observe(s, *t);
        }
        let mut prev = 0.0;
        for &k in acc.ks() {
            let a = acc.accuracy(k);
            assert!(a >= prev, "top-k accuracy must be monotone in k");
            prev = a;
        }
    }

    #[test]
    #[should_panic(expected = "was not registered")]
    fn unregistered_k_panics() {
        TopKAccuracy::new(&[1]).accuracy(2);
    }
}

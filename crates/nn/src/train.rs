//! Training loop, time-series cross-validation and grid search.
//!
//! Mirrors the paper's methodology (§IV-A): mini-batch training with weight
//! decay, hyperparameter selection by grid search over *time-series*
//! cross-validation folds (expanding window, so validation data is always
//! strictly later than training data — shuffling location trajectories
//! across time would leak the future).

use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{
    metrics::evaluate_top_k, softmax_cross_entropy, Adam, Optimizer, Sample, SequenceModel, Sgd,
    TopKAccuracy,
};

/// Which optimizer family [`fit`] instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OptimizerKind {
    /// Adam with standard betas.
    Adam,
    /// SGD with momentum 0.9.
    Sgd,
}

/// Hyperparameters for one training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Mini-batch size (gradients are averaged within a batch).
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// L2 weight-decay coefficient.
    pub weight_decay: f32,
    /// Optimizer family.
    pub optimizer: OptimizerKind,
    /// Seed for epoch shuffling.
    pub shuffle_seed: u64,
}

impl Default for TrainConfig {
    /// Defaults tuned for the synthetic campus workload; the paper's
    /// published values (`lr = 1e-4`, `weight_decay = 1e-6`, batch 128)
    /// are reachable by overriding fields.
    fn default() -> Self {
        Self {
            epochs: 10,
            batch_size: 32,
            lr: 3e-3,
            weight_decay: 1e-6,
            optimizer: OptimizerKind::Adam,
            shuffle_seed: 0x5eed,
        }
    }
}

impl TrainConfig {
    /// The same hyperparameters with a different shuffle seed.
    ///
    /// Fleet pipelines train many users (and warm-start rounds) from one
    /// hyperparameter template; deriving each run's config this way keeps
    /// the template immutable and makes the reseeding explicit at the
    /// call site.
    pub fn reseeded(&self, shuffle_seed: u64) -> Self {
        Self { shuffle_seed, ..self.clone() }
    }

    pub(crate) fn make_optimizer(&self) -> Optimizer {
        match self.optimizer {
            OptimizerKind::Adam => Adam::new(self.lr).with_weight_decay(self.weight_decay).into(),
            OptimizerKind::Sgd => {
                Sgd::new(self.lr).with_momentum(0.9).with_weight_decay(self.weight_decay).into()
            }
        }
    }
}

/// Outcome of a [`fit`] call.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FitReport {
    /// Mean training loss per epoch, in order.
    pub epoch_losses: Vec<f32>,
    /// Number of optimizer steps taken.
    pub steps: usize,
    /// Number of training samples seen per epoch.
    pub samples_per_epoch: usize,
}

impl FitReport {
    /// Mean loss of the final epoch, or NaN if no epochs ran.
    pub fn final_loss(&self) -> f32 {
        self.epoch_losses.last().copied().unwrap_or(f32::NAN)
    }
}

/// Trains `model` on `samples` under `config`.
///
/// Gradients are accumulated per mini-batch and applied as means. Sample
/// order is reshuffled every epoch from `config.shuffle_seed`.
///
/// # Panics
///
/// Panics if `samples` is empty or `config.batch_size == 0`.
pub fn fit(model: &mut SequenceModel, samples: &[Sample], config: &TrainConfig) -> FitReport {
    assert!(!samples.is_empty(), "cannot fit on an empty dataset");
    assert!(config.batch_size > 0, "batch size must be positive");
    let mut optimizer = config.make_optimizer();
    let mut order: Vec<usize> = (0..samples.len()).collect();
    let mut rng = StdRng::seed_from_u64(config.shuffle_seed);
    let mut report = FitReport {
        epoch_losses: Vec::with_capacity(config.epochs),
        steps: 0,
        samples_per_epoch: samples.len(),
    };
    for _epoch in 0..config.epochs {
        shuffle(&mut order, &mut rng);
        let mut epoch_loss = 0.0;
        for chunk in order.chunks(config.batch_size) {
            for &idx in chunk {
                let s = &samples[idx];
                let out = model.forward(&s.xs);
                let logits = out.last().expect("nonempty sequence");
                let (loss, dlogits) = softmax_cross_entropy(logits, s.target);
                epoch_loss += loss;
                model.backward_from_logits(s.xs.len(), dlogits);
            }
            optimizer.step(model, chunk.len());
            report.steps += 1;
        }
        report.epoch_losses.push(epoch_loss / samples.len() as f32);
    }
    report
}

pub(crate) fn shuffle(order: &mut [usize], rng: &mut StdRng) {
    for i in (1..order.len()).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }
}

/// Evaluation summary: top-k accuracies plus mean cross-entropy loss.
#[derive(Debug, Clone)]
pub struct EvalReport {
    /// Accuracy accumulator for the requested `k` values.
    pub top_k: TopKAccuracy,
    /// Mean cross-entropy loss over the evaluation set.
    pub mean_loss: f64,
}

/// Evaluates `model` on `samples` at the given `k` values.
pub fn evaluate(model: &SequenceModel, samples: &[Sample], ks: &[usize]) -> EvalReport {
    let top_k = evaluate_top_k(model, samples, ks);
    let mut loss_sum = 0.0;
    for s in samples {
        let logits = model.logits(&s.xs);
        loss_sum += softmax_cross_entropy(&logits, s.target).0 as f64;
    }
    let mean_loss = if samples.is_empty() { 0.0 } else { loss_sum / samples.len() as f64 };
    EvalReport { top_k, mean_loss }
}

/// Expanding-window time-series cross-validation folds.
///
/// Splits `[0, n)` into `folds + 1` contiguous chunks; fold `i` trains on
/// chunks `0..=i` and validates on chunk `i + 1`. Validation data is always
/// strictly later than training data.
///
/// Returns `(train_range, validation_range)` pairs.
///
/// # Panics
///
/// Panics if `folds == 0` or `n < folds + 1`.
pub fn time_series_folds(
    n: usize,
    folds: usize,
) -> Vec<(std::ops::Range<usize>, std::ops::Range<usize>)> {
    assert!(folds > 0, "need at least one fold");
    assert!(n > folds, "cannot split {n} samples into {folds} time-series folds");
    let chunk = n / (folds + 1);
    let mut out = Vec::with_capacity(folds);
    for i in 0..folds {
        let train_end = chunk * (i + 1);
        let val_end = if i + 1 == folds { n } else { chunk * (i + 2) };
        out.push((0..train_end, train_end..val_end));
    }
    out
}

/// One cell of a hyperparameter grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridPoint {
    /// Learning rate.
    pub lr: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Training epochs.
    pub epochs: usize,
}

/// Grid search with time-series cross-validation (the paper's §IV-A
/// hyperparameter-selection protocol).
///
/// For each grid point, trains a fresh model (from `factory`) on each
/// expanding-window fold and scores top-`k_eval` accuracy on the fold's
/// validation slice. Returns the best point and its mean validation score.
///
/// # Panics
///
/// Panics if `grid` is empty or `samples` is too small for `folds`.
pub fn grid_search<F>(
    factory: F,
    samples: &[Sample],
    grid: &[GridPoint],
    folds: usize,
    k_eval: usize,
) -> (GridPoint, f64)
where
    F: Fn() -> SequenceModel,
{
    assert!(!grid.is_empty(), "grid search needs at least one point");
    let splits = time_series_folds(samples.len(), folds);
    let mut best: Option<(GridPoint, f64)> = None;
    for point in grid {
        let mut score_sum = 0.0;
        for (train, val) in &splits {
            let mut model = factory();
            let config = TrainConfig {
                epochs: point.epochs,
                lr: point.lr,
                weight_decay: point.weight_decay,
                ..TrainConfig::default()
            };
            fit(&mut model, &samples[train.clone()], &config);
            let report = evaluate(&model, &samples[val.clone()], &[k_eval]);
            score_sum += report.top_k.accuracy(k_eval);
        }
        let mean = score_sum / splits.len() as f64;
        if best.as_ref().is_none_or(|(_, s)| mean > *s) {
            best = Some((point.clone(), mean));
        }
    }
    best.expect("nonempty grid always yields a best point")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A linearly-separable toy task: class = index of the hot input bit.
    fn toy_samples(n: usize, classes: usize, seed: u64) -> Vec<Sample> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let c = rng.random_range(0..classes);
                let mut x = vec![0.0; classes];
                x[c] = 1.0;
                Sample::new(vec![x.clone(), x], c)
            })
            .collect()
    }

    fn toy_model(classes: usize) -> SequenceModel {
        let mut rng = StdRng::seed_from_u64(11);
        SequenceModel::builder().lstm(classes, 16, &mut rng).linear(16, classes, &mut rng).build()
    }

    #[test]
    fn fit_learns_separable_task() {
        let samples = toy_samples(200, 4, 1);
        let mut model = toy_model(4);
        let config = TrainConfig { epochs: 20, lr: 1e-2, ..TrainConfig::default() };
        let report = fit(&mut model, &samples, &config);
        assert!(report.final_loss() < report.epoch_losses[0] * 0.5);
        let eval = evaluate(&model, &samples, &[1]);
        assert!(
            eval.top_k.accuracy(1) > 0.9,
            "separable task should reach >90%, got {}",
            eval.top_k.accuracy(1)
        );
    }

    #[test]
    fn fit_is_deterministic_given_seeds() {
        let samples = toy_samples(50, 3, 2);
        let config = TrainConfig { epochs: 3, ..TrainConfig::default() };
        let mut m1 = toy_model(3);
        let mut m2 = toy_model(3);
        let r1 = fit(&mut m1, &samples, &config);
        let r2 = fit(&mut m2, &samples, &config);
        assert_eq!(r1.epoch_losses, r2.epoch_losses);
    }

    #[test]
    fn reseeding_changes_only_the_shuffle_seed() {
        let template = TrainConfig { epochs: 3, lr: 7e-3, ..TrainConfig::default() };
        let derived = template.reseeded(0xFEED);
        assert_eq!(derived.shuffle_seed, 0xFEED);
        assert_eq!(
            TrainConfig { shuffle_seed: template.shuffle_seed, ..derived.clone() },
            template,
            "every other hyperparameter carries over"
        );
        // Different shuffle order, same data: losses differ epoch by
        // epoch but both runs still train.
        let samples = toy_samples(50, 3, 2);
        let mut m1 = toy_model(3);
        let mut m2 = toy_model(3);
        let r1 = fit(&mut m1, &samples, &template);
        let r2 = fit(&mut m2, &samples, &derived);
        assert_ne!(r1.epoch_losses, r2.epoch_losses, "reseeding reshuffles epochs");
    }

    #[test]
    fn frozen_model_does_not_change() {
        let samples = toy_samples(20, 3, 3);
        let mut model = toy_model(3);
        model.freeze_all();
        let before = model.logits(&samples[0].xs);
        fit(&mut model, &samples, &TrainConfig { epochs: 2, ..TrainConfig::default() });
        let after = model.logits(&samples[0].xs);
        assert_eq!(before, after);
    }

    #[test]
    fn folds_are_time_ordered_and_cover() {
        let folds = time_series_folds(100, 4);
        assert_eq!(folds.len(), 4);
        for (train, val) in &folds {
            assert_eq!(train.start, 0);
            assert_eq!(train.end, val.start, "validation follows training");
            assert!(!val.is_empty());
        }
        assert_eq!(folds.last().unwrap().1.end, 100, "last fold reaches the end");
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn folds_reject_tiny_inputs() {
        let _ = time_series_folds(2, 5);
    }

    #[test]
    fn grid_search_prefers_working_lr() {
        let samples = toy_samples(120, 3, 4);
        let grid = vec![
            GridPoint { lr: 1e-9, weight_decay: 0.0, epochs: 5 }, // too small to learn
            GridPoint { lr: 1e-2, weight_decay: 0.0, epochs: 5 },
        ];
        let (best, score) = grid_search(|| toy_model(3), &samples, &grid, 3, 1);
        assert_eq!(best.lr, 1e-2, "grid search should pick the learnable rate");
        assert!(score > 0.5);
    }

    #[test]
    fn evaluate_reports_loss() {
        let samples = toy_samples(30, 3, 5);
        let model = toy_model(3);
        let eval = evaluate(&model, &samples, &[1, 3]);
        assert!(eval.mean_loss > 0.0);
        assert!((eval.top_k.accuracy(3) - 1.0).abs() < 1e-9, "top-3 of 3 classes is always a hit");
    }
}

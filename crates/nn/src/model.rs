//! [`SequenceModel`]: an ordered stack of layers with a classification head.

use rand::{Rng, RngExt as _};
use serde::{Deserialize, Serialize};

use pelican_tensor::{softmax_temperature_in_place, Matrix};

use crate::chunk::ChunkBatch;
use crate::{Dropout, Layer, Linear, Lstm, Sequence, Step};

/// Inference-time post-processing of confidence vectors.
///
/// [`Postprocess::Temperature`] is subsumed by
/// [`SequenceModel::set_temperature`]; the other variants implement the
/// *comparison* defenses the paper surveys in Table V: additive noise on
/// the outputs (MemGuard-style output perturbation) and precision
/// truncation. They let experiments pit Pelican's temperature layer
/// against the obvious alternatives on equal footing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum Postprocess {
    /// No post-processing (the default).
    #[default]
    None,
    /// Add zero-mean Gaussian-ish noise with the given standard deviation
    /// to every confidence, clamp at 0 and renormalize. Noise is
    /// *deterministic per query* (seeded by a hash of the input), so an
    /// adversary cannot average it away by repeating a query.
    GaussianNoise {
        /// Noise standard deviation.
        sigma: f32,
        /// Seed mixed into the per-query hash.
        seed: u64,
    },
    /// Round every confidence to `decimals` decimal places and
    /// renormalize — the crudest way to starve an attack of low-order
    /// confidence bits.
    Round {
        /// Number of decimal places kept.
        decimals: u32,
    },
}

impl Postprocess {
    /// Applies the post-processing to a confidence vector in place.
    /// `query_hash` identifies the query for deterministic noise.
    fn apply(&self, probs: &mut [f32], query_hash: u64) {
        match *self {
            Postprocess::None => {}
            Postprocess::GaussianNoise { sigma, seed } => {
                let mut state = query_hash ^ seed ^ 0x9E37_79B9_7F4A_7C15;
                for p in probs.iter_mut() {
                    // xorshift + sum-of-uniforms ≈ gaussian (Irwin–Hall 4).
                    let mut acc = 0.0f32;
                    for _ in 0..4 {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        acc += (state >> 40) as f32 / (1u64 << 24) as f32;
                    }
                    let noise = (acc - 2.0) * sigma * (3.0f32).sqrt();
                    *p = (*p + noise).max(0.0);
                }
                renormalize(probs);
            }
            Postprocess::Round { decimals } => {
                let scale = 10f32.powi(decimals as i32);
                for p in probs.iter_mut() {
                    *p = (*p * scale).round() / scale;
                }
                renormalize(probs);
            }
        }
    }
}

fn renormalize(probs: &mut [f32]) {
    let sum: f32 = probs.iter().sum();
    if sum > 0.0 {
        for p in probs.iter_mut() {
            *p /= sum;
        }
    } else if let Some(first) = probs.first() {
        // All mass rounded/clamped away; fall back to uniform.
        let uniform = 1.0 / probs.len() as f32;
        let _ = first;
        probs.fill(uniform);
    }
}

/// FNV-style fingerprint of a query sequence.
///
/// This is the identity [`Postprocess`] keys deterministic per-query
/// noise on, and the key callers can cache per-query *logits* under:
/// defenses only change the logits→confidence mapping (temperature,
/// post-processing), never the logits themselves, so a logit cached by
/// query hash stays valid across defense changes as long as the weights
/// are untouched.
pub fn query_hash(xs: &[Step]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for step in xs {
        for &v in step {
            h ^= v.to_bits() as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

/// A sequence classification model: stacked layers whose final timestep
/// output is interpreted as class logits.
///
/// This is the shape of every model in the paper (Fig. 1): LSTM layers
/// (optionally interleaved with dropout) followed by a linear head. The
/// model also carries an inference-time softmax `temperature` — the paper's
/// privacy layer (§V-B). At `temperature == 1` the model behaves like a
/// plain softmax classifier; pushing the temperature toward zero sharpens
/// confidence scores without changing their ranking, which preserves top-k
/// accuracy while starving model-inversion attacks of signal.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SequenceModel {
    layers: Vec<Layer>,
    temperature: f32,
    #[serde(default)]
    postprocess: Postprocess,
}

impl SequenceModel {
    /// Starts building a model layer by layer.
    pub fn builder() -> ModelBuilder {
        ModelBuilder { layers: Vec::new() }
    }

    /// Creates a model from an explicit layer stack.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty.
    pub fn from_layers(layers: Vec<Layer>) -> Self {
        assert!(!layers.is_empty(), "a model needs at least one layer");
        Self { layers, temperature: 1.0, postprocess: Postprocess::None }
    }

    /// The paper's two-LSTM general architecture (Fig. 1a): two LSTM layers
    /// with dropout in between, then a linear head.
    pub fn general_lstm<R: Rng + ?Sized>(
        input_dim: usize,
        hidden_dim: usize,
        num_classes: usize,
        dropout: f32,
        rng: &mut R,
    ) -> Self {
        let dropout_seed = rng.random::<u64>();
        Self::builder()
            .lstm(input_dim, hidden_dim, rng)
            .dropout(dropout, dropout_seed)
            .lstm(hidden_dim, hidden_dim, rng)
            .linear(hidden_dim, num_classes, rng)
            .build()
    }

    /// A single-LSTM model — the paper's from-scratch personalization
    /// baseline ("LSTM" row of Table III).
    pub fn single_lstm<R: Rng + ?Sized>(
        input_dim: usize,
        hidden_dim: usize,
        num_classes: usize,
        dropout: f32,
        rng: &mut R,
    ) -> Self {
        let dropout_seed = rng.random::<u64>();
        Self::builder()
            .lstm(input_dim, hidden_dim, rng)
            .dropout(dropout, dropout_seed)
            .linear(hidden_dim, num_classes, rng)
            .build()
    }

    /// Number of input features per timestep.
    pub fn input_dim(&self) -> usize {
        match &self.layers[0] {
            Layer::Lstm(l) => l.input_dim(),
            Layer::Linear(l) => l.input_dim(),
            Layer::Dropout(_) => panic!("model starts with dropout; input dim undefined"),
        }
    }

    /// Number of output classes.
    pub fn output_dim(&self) -> usize {
        self.layers
            .iter()
            .rev()
            .find_map(|l| match l {
                Layer::Lstm(l) => Some(l.output_dim()),
                Layer::Linear(l) => Some(l.output_dim()),
                Layer::Dropout(_) => None,
            })
            .expect("model has at least one parameterized layer")
    }

    /// The inference-time softmax temperature (1.0 = disabled).
    pub fn temperature(&self) -> f32 {
        self.temperature
    }

    /// Sets the inference-time softmax temperature — Pelican's privacy
    /// layer. Values in `(0, 1)` sharpen confidences; 1.0 disables scaling.
    ///
    /// # Panics
    ///
    /// Panics unless `temperature > 0` and finite.
    pub fn set_temperature(&mut self, temperature: f32) {
        assert!(
            temperature > 0.0 && temperature.is_finite(),
            "temperature must be positive and finite, got {temperature}"
        );
        self.temperature = temperature;
    }

    /// Borrows the layer stack.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutably borrows the layer stack (e.g. to freeze layers).
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Inserts a layer immediately before the final layer (the linear head).
    ///
    /// This implements the feature-extraction flavour of transfer learning
    /// (Fig. 1b): freeze the pretrained stack, then stack a fresh LSTM
    /// before the output layer to learn user-specific patterns.
    pub fn insert_before_head(&mut self, layer: Layer) {
        let at = self.layers.len() - 1;
        self.layers.insert(at, layer);
    }

    /// Freezes every layer (no parameter updates anywhere).
    pub fn freeze_all(&mut self) {
        for l in &mut self.layers {
            l.set_trainable(false);
        }
    }

    /// Total number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Layer::param_count).sum()
    }

    /// Number of parameters in trainable (unfrozen) layers.
    pub fn trainable_param_count(&self) -> usize {
        self.layers.iter().filter(|l| l.is_trainable()).map(Layer::param_count).sum()
    }

    /// Inference-mode forward pass returning raw logits for the final
    /// timestep. No dropout, no caches, no temperature.
    pub fn logits(&self, xs: &[Step]) -> Step {
        assert!(!xs.is_empty(), "cannot run a model on an empty sequence");
        let mut cur = self.layers[0].infer(xs);
        for layer in &self.layers[1..] {
            cur = layer.infer(&cur);
        }
        cur.pop().expect("sequence length preserved by all layers")
    }

    /// Batched [`SequenceModel::logits`]: one final-timestep logit vector
    /// per input sequence, computed through the fused batch path of every
    /// layer (see [`Lstm::infer_batch`]). Bit-identical to the unbatched
    /// method per row, with identical recorded FLOPs.
    pub fn logits_batch<S: AsRef<[Step]>>(&self, xs: &[S]) -> Vec<Step> {
        assert!(
            xs.iter().all(|s| !s.as_ref().is_empty()),
            "cannot run a model on an empty sequence"
        );
        if xs.is_empty() {
            return Vec::new();
        }
        let mut cur = self.layers[0].infer_batch(xs);
        for layer in &self.layers[1..] {
            cur = layer.infer_batch(&cur);
        }
        cur.into_iter()
            .map(|mut seq| seq.pop().expect("sequence length preserved by all layers"))
            .collect()
    }

    /// Confidence scores for the final timestep: temperature-scaled softmax
    /// over [`SequenceModel::logits`]. This is the black-box interface the
    /// service provider (and therefore the adversary) sees.
    pub fn predict_proba(&self, xs: &[Step]) -> Step {
        let logits = self.logits(xs);
        self.proba_from_logits(logits, query_hash(xs))
    }

    /// Applies the inference-time confidence pipeline (temperature-scaled
    /// softmax, then post-processing keyed by `query_hash`) to raw
    /// logits. `predict_proba(xs)` ≡
    /// `proba_from_logits(logits(xs), query_hash(xs))`, bit for bit —
    /// which is what lets audit gates cache logits per query and replay
    /// them under a different deployed defense without re-running the
    /// forward pass.
    pub fn proba_from_logits(&self, mut logits: Step, query_hash: u64) -> Step {
        softmax_temperature_in_place(&mut logits, self.temperature);
        self.postprocess.apply(&mut logits, query_hash);
        logits
    }

    /// Batched [`SequenceModel::predict_proba`].
    ///
    /// The privacy layer (temperature scaling) and any confidence
    /// post-processing apply *per row* — each row is hashed and
    /// post-processed exactly as its unbatched query would be — so batched
    /// and unbatched answers are bit-identical.
    pub fn predict_proba_batch<S: AsRef<[Step]>>(&self, xs: &[S]) -> Vec<Step> {
        let mut rows = self.logits_batch(xs);
        for (row, seq) in rows.iter_mut().zip(xs) {
            softmax_temperature_in_place(row, self.temperature);
            self.postprocess.apply(row, query_hash(seq.as_ref()));
        }
        rows
    }

    /// The configured confidence post-processing.
    pub fn postprocess(&self) -> Postprocess {
        self.postprocess
    }

    /// Installs confidence post-processing (see [`Postprocess`]). Applied
    /// after temperature scaling and softmax, at inference only.
    pub fn set_postprocess(&mut self, postprocess: Postprocess) {
        self.postprocess = postprocess;
    }

    /// Indices of the `k` most confident classes, descending. Ties order
    /// by class index, so results are stable across re-runs and identical
    /// between the batched and unbatched paths.
    pub fn predict_top_k(&self, xs: &[Step], k: usize) -> Vec<usize> {
        pelican_tensor::top_k(&self.logits(xs), k)
    }

    /// Batched [`SequenceModel::predict_top_k`]: one ranking per input
    /// sequence, computed from batched logits.
    pub fn predict_top_k_batch<S: AsRef<[Step]>>(&self, xs: &[S], k: usize) -> Vec<Vec<usize>> {
        self.logits_batch(xs).iter().map(|row| pelican_tensor::top_k(row, k)).collect()
    }

    /// Training-mode forward pass (dropout active, caches written).
    /// Returns the full output sequence of the last layer.
    pub fn forward(&mut self, xs: &Sequence) -> Sequence {
        assert!(!xs.is_empty(), "cannot run a model on an empty sequence");
        let mut cur = self.layers[0].forward(xs);
        for layer in &mut self.layers[1..] {
            cur = layer.forward(&cur);
        }
        cur
    }

    /// Backward pass from a gradient on the final timestep's logits.
    ///
    /// Accumulates parameter gradients in trainable layers and returns the
    /// gradient with respect to every input timestep — the quantity the
    /// gradient-descent inversion attack consumes.
    ///
    /// # Panics
    ///
    /// Panics if called before [`SequenceModel::forward`] in this round.
    pub fn backward_from_logits(&mut self, seq_len: usize, dlogits: Step) -> Sequence {
        let zero_width = dlogits.len();
        let mut grads: Sequence = vec![vec![0.0; zero_width]; seq_len];
        let last = seq_len - 1;
        grads[last] = dlogits;
        for layer in self.layers.iter_mut().rev() {
            grads = layer.backward(&grads);
        }
        grads
    }

    /// Lockstep training-mode forward pass over a chunk of sequences
    /// (dropout active, chunk caches written). Returns the full output
    /// sequence of the last layer per sample; bit-identical to calling
    /// [`SequenceModel::forward`] once per sample in chunk order.
    ///
    /// Convenience wrapper over [`SequenceModel::forward_chunk_packed`] —
    /// the packed form the lockstep trainer drives — paying one pack and
    /// one unpack at the model boundary.
    pub fn forward_chunk(&mut self, xs: &[Sequence]) -> Vec<Sequence> {
        if xs.is_empty() {
            return Vec::new();
        }
        let batch = ChunkBatch::pack(xs.iter(), self.input_dim());
        self.forward_chunk_packed(batch).unpack()
    }

    /// Lockstep training-mode forward pass over a packed chunk (dropout
    /// active, chunk caches written). The whole layer stack passes one
    /// flat sample-major batch from layer to layer — no per-sample or
    /// per-timestep allocations at the boundaries. Bit-identical outputs,
    /// caches and recorded FLOPs to calling [`SequenceModel::forward`]
    /// once per sample in chunk order.
    pub(crate) fn forward_chunk_packed(&mut self, batch: ChunkBatch) -> ChunkBatch {
        assert!(batch.lens.iter().all(|&len| len > 0), "cannot run a model on an empty sequence");
        let mut cur = batch;
        for layer in &mut self.layers {
            cur = layer.forward_chunk_packed(cur);
        }
        cur
    }

    /// Lockstep backward pass from per-sample gradients on the final
    /// timestep's logits — the chunk analogue of
    /// [`SequenceModel::backward_from_logits`]. `per_sample` pairs each
    /// sample's sequence length with its logit gradient. Accumulated
    /// parameter gradients (and returned input gradients) are
    /// bit-identical to running the sequential method once per sample in
    /// chunk order.
    ///
    /// # Panics
    ///
    /// Panics if called before [`SequenceModel::forward_chunk`] in this
    /// round.
    pub fn backward_chunk_from_logits(&mut self, per_sample: Vec<(usize, Step)>) -> Vec<Sequence> {
        self.backward_chunk_from_logits_packed(per_sample).unpack()
    }

    /// Packed form of [`SequenceModel::backward_chunk_from_logits`]: the
    /// gradient batch starts as one zero matrix with each sample's logit
    /// gradient written into its final-timestep row, then flows backward
    /// through the packed chunk kernels of every layer.
    pub(crate) fn backward_chunk_from_logits_packed(
        &mut self,
        per_sample: Vec<(usize, Step)>,
    ) -> ChunkBatch {
        let lens: Vec<usize> = per_sample.iter().map(|(seq_len, _)| *seq_len).collect();
        let offsets = ChunkBatch::offsets_of(&lens);
        let total = offsets[lens.len()];
        let width = per_sample.first().map_or(0, |(_, dlogits)| dlogits.len());
        let mut rows = Matrix::zeros(total, width);
        for (i, (seq_len, dlogits)) in per_sample.into_iter().enumerate() {
            rows.row_mut(offsets[i] + seq_len - 1).copy_from_slice(&dlogits);
        }
        let mut grads = ChunkBatch { lens, offsets, rows };
        for layer in self.layers.iter_mut().rev() {
            grads = layer.backward_chunk_packed(grads);
        }
        grads
    }

    /// Computes the gradient of the cross-entropy loss (toward `target`)
    /// with respect to the *input sequence*, leaving parameters untouched.
    ///
    /// Runs a cache-writing forward pass internally, so `&mut self`; the
    /// accumulated parameter gradients are zeroed afterwards to keep the
    /// model state clean for subsequent training.
    pub fn input_gradient(&mut self, xs: &Sequence, target: usize) -> (f32, Sequence) {
        let out = self.infer_forward_cached(xs);
        let logits = out.last().expect("nonempty sequence").clone();
        let (loss, dlogits) = crate::softmax_cross_entropy(&logits, target);
        let grads = self.backward_from_logits(xs.len(), dlogits);
        self.zero_grad();
        (loss, grads)
    }

    /// Forward pass that writes caches but applies *inference* semantics to
    /// dropout (identity). Needed by attacks: the adversary interrogates the
    /// deployed model, which has dropout disabled, yet still needs caches
    /// for the backward pass.
    fn infer_forward_cached(&mut self, xs: &Sequence) -> Sequence {
        let mut cur = xs.clone();
        for layer in &mut self.layers {
            cur = match layer {
                Layer::Dropout(d) => d.forward_identity(&cur),
                other => other.forward(&cur),
            };
        }
        cur
    }

    /// Clears accumulated gradients in all layers.
    pub fn zero_grad(&mut self) {
        for l in &mut self.layers {
            l.zero_grad();
        }
    }

    /// One-line architecture summary, e.g.
    /// `lstm(229->128) -> dropout(0.1) -> lstm(128->128) -> linear(128->150) @T=1`.
    pub fn describe(&self) -> String {
        let body: Vec<String> = self.layers.iter().map(Layer::describe).collect();
        format!("{} @T={}", body.join(" -> "), self.temperature)
    }
}

/// Builder for [`SequenceModel`]; see [`SequenceModel::builder`].
#[derive(Debug)]
pub struct ModelBuilder {
    layers: Vec<Layer>,
}

impl ModelBuilder {
    /// Appends an LSTM layer.
    pub fn lstm<R: Rng + ?Sized>(
        mut self,
        input_dim: usize,
        hidden_dim: usize,
        rng: &mut R,
    ) -> Self {
        self.layers.push(Lstm::new(input_dim, hidden_dim, rng).into());
        self
    }

    /// Appends a dropout layer.
    pub fn dropout(mut self, rate: f32, seed: u64) -> Self {
        self.layers.push(Dropout::new(rate, seed).into());
        self
    }

    /// Appends a linear layer.
    pub fn linear<R: Rng + ?Sized>(
        mut self,
        input_dim: usize,
        output_dim: usize,
        rng: &mut R,
    ) -> Self {
        self.layers.push(Linear::new(input_dim, output_dim, rng).into());
        self
    }

    /// Finishes the build.
    ///
    /// # Panics
    ///
    /// Panics if no layers were added or adjacent layer dimensions mismatch.
    pub fn build(self) -> SequenceModel {
        assert!(!self.layers.is_empty(), "a model needs at least one layer");
        let mut prev_out: Option<usize> = None;
        for layer in &self.layers {
            let (i, o) = match layer {
                Layer::Lstm(l) => (Some(l.input_dim()), Some(l.output_dim())),
                Layer::Linear(l) => (Some(l.input_dim()), Some(l.output_dim())),
                Layer::Dropout(_) => (None, None),
            };
            if let (Some(expect), Some(got)) = (prev_out, i) {
                assert_eq!(
                    expect,
                    got,
                    "layer {} expects input {got} but previous layer outputs {expect}",
                    layer.describe()
                );
            }
            if o.is_some() {
                prev_out = o;
            }
        }
        SequenceModel::from_layers(self.layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_model() -> SequenceModel {
        let mut rng = StdRng::seed_from_u64(5);
        SequenceModel::general_lstm(6, 8, 4, 0.1, &mut rng)
    }

    #[test]
    fn proba_is_a_distribution() {
        let m = tiny_model();
        let xs = vec![vec![0.5; 6], vec![-0.5; 6]];
        let p = m.predict_proba(&xs);
        assert_eq!(p.len(), 4);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!(p.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn temperature_does_not_change_top1() {
        let mut m = tiny_model();
        let xs = vec![vec![0.3; 6], vec![0.1; 6]];
        let before = m.predict_top_k(&xs, 1);
        m.set_temperature(1e-2);
        let p = m.predict_proba(&xs);
        assert_eq!(pelican_tensor::argmax(&p), Some(before[0]));
    }

    #[test]
    fn builder_checks_dimensions() {
        let mut rng = StdRng::seed_from_u64(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            SequenceModel::builder()
                .lstm(4, 8, &mut rng)
                .linear(9, 2, &mut rng) // mismatched: 8 != 9
                .build()
        }));
        assert!(result.is_err());
    }

    #[test]
    fn insert_before_head_grows_stack() {
        let mut m = tiny_model();
        let mut rng = StdRng::seed_from_u64(1);
        let n = m.layers().len();
        m.insert_before_head(Lstm::new(8, 8, &mut rng).into());
        assert_eq!(m.layers().len(), n + 1);
        assert!(matches!(m.layers()[n - 1], Layer::Lstm(_)));
        assert!(matches!(m.layers()[n], Layer::Linear(_)));
        // Model still runs end to end.
        let p = m.predict_proba(&vec![vec![0.0; 6]; 2]);
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn freeze_all_zeroes_trainable_count() {
        let mut m = tiny_model();
        assert!(m.trainable_param_count() > 0);
        m.freeze_all();
        assert_eq!(m.trainable_param_count(), 0);
        assert!(m.param_count() > 0);
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut m = tiny_model();
        let xs = vec![vec![0.2; 6], vec![-0.3; 6]];
        let target = 1;
        let (_, grads) = m.input_gradient(&xs, target);
        let eps = 1e-2;
        for t in 0..2 {
            for j in [0usize, 3, 5] {
                let mut plus = xs.clone();
                plus[t][j] += eps;
                let mut minus = xs.clone();
                minus[t][j] -= eps;
                let f = |s: &Sequence| crate::softmax_cross_entropy(&m.logits(s), target).0;
                let fd = (f(&plus) - f(&minus)) / (2.0 * eps);
                assert!(
                    (grads[t][j] - fd).abs() < 2e-2,
                    "t={t} j={j}: analytic {} vs fd {fd}",
                    grads[t][j]
                );
            }
        }
    }

    #[test]
    fn proba_from_logits_replays_predict_proba_under_every_defense() {
        let mut m = tiny_model();
        let xs = vec![vec![0.4; 6], vec![-0.2; 6]];
        let logits = m.logits(&xs);
        let key = query_hash(&xs);
        for (temperature, post) in [
            (1.0, Postprocess::None),
            (1e-3, Postprocess::None),
            (1.0, Postprocess::GaussianNoise { sigma: 0.1, seed: 9 }),
            (1.0, Postprocess::Round { decimals: 1 }),
        ] {
            m.set_temperature(temperature);
            m.set_postprocess(post);
            assert_eq!(
                m.proba_from_logits(logits.clone(), key),
                m.predict_proba(&xs),
                "cached-logit replay must be bit-identical at T={temperature} {post:?}"
            );
        }
    }

    #[test]
    fn describe_mentions_every_layer() {
        let m = tiny_model();
        let d = m.describe();
        assert!(d.contains("lstm(6->8)"));
        assert!(d.contains("dropout(0.1)"));
        assert!(d.contains("linear(8->4)"));
        assert!(d.contains("@T=1"));
    }

    #[test]
    fn input_gradient_leaves_params_clean() {
        let mut m = tiny_model();
        let xs = vec![vec![0.1; 6]; 2];
        let _ = m.input_gradient(&xs, 0);
        let mut dirty = false;
        for l in m.layers_mut() {
            l.visit_params(&mut |_, g| {
                if g.iter().any(|&v| v != 0.0) {
                    dirty = true;
                }
            });
        }
        assert!(!dirty, "input_gradient must zero parameter grads");
    }
}

//! Optimizers: SGD with momentum/weight decay, and Adam.
//!
//! The paper trains with a learning rate of `1e-4` and weight decay of
//! `1e-6` (§IV-A); both optimizers here support decoupled L2 weight decay
//! so those hyperparameters carry over directly.

use serde::{Deserialize, Serialize};

use crate::SequenceModel;

/// A first-order optimizer stepping a [`SequenceModel`].
///
/// Gradients are expected to be *accumulated* (summed) over a minibatch via
/// the model's backward passes; [`Optimizer::step`] divides by `batch_size`
/// to apply the mean gradient, then zeroes the buffers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Optimizer {
    /// Stochastic gradient descent.
    Sgd(Sgd),
    /// Adam (Kingma & Ba).
    Adam(Adam),
}

impl Optimizer {
    /// Applies one update from the accumulated gradients and zeroes them.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn step(&mut self, model: &mut SequenceModel, batch_size: usize) {
        assert!(batch_size > 0, "batch size must be positive");
        match self {
            Optimizer::Sgd(o) => o.step(model, batch_size),
            Optimizer::Adam(o) => o.step(model, batch_size),
        }
    }

    /// The configured learning rate.
    pub fn learning_rate(&self) -> f32 {
        match self {
            Optimizer::Sgd(o) => o.lr,
            Optimizer::Adam(o) => o.lr,
        }
    }
}

impl From<Sgd> for Optimizer {
    fn from(o: Sgd) -> Self {
        Optimizer::Sgd(o)
    }
}

impl From<Adam> for Optimizer {
    fn from(o: Adam) -> Self {
        Optimizer::Adam(o)
    }
}

/// SGD with optional momentum and L2 weight decay.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// L2 weight-decay coefficient.
    pub weight_decay: f32,
    #[serde(skip)]
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Plain SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Self { lr, momentum: 0.0, weight_decay: 0.0, velocity: Vec::new() }
    }

    /// Sets the momentum coefficient.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }

    /// Sets the L2 weight-decay coefficient.
    pub fn with_weight_decay(mut self, weight_decay: f32) -> Self {
        self.weight_decay = weight_decay;
        self
    }

    fn step(&mut self, model: &mut SequenceModel, batch_size: usize) {
        let inv_b = 1.0 / batch_size as f32;
        let mut slot = 0usize;
        for layer in model.layers_mut() {
            layer.visit_params(&mut |param, grad| {
                if self.velocity.len() <= slot {
                    self.velocity.push(vec![0.0; param.len()]);
                }
                let vel = &mut self.velocity[slot];
                if vel.len() != param.len() {
                    *vel = vec![0.0; param.len()];
                }
                for ((p, g), v) in param.iter_mut().zip(grad.iter()).zip(vel.iter_mut()) {
                    let mut step = g * inv_b + self.weight_decay * *p;
                    if self.momentum != 0.0 {
                        *v = self.momentum * *v + step;
                        step = *v;
                    }
                    *p -= self.lr * step;
                }
                slot += 1;
            });
            layer.zero_grad();
        }
    }
}

/// Adam with bias correction and L2 weight decay.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// Exponential-decay rate for the first moment.
    pub beta1: f32,
    /// Exponential-decay rate for the second moment.
    pub beta2: f32,
    /// Numerical-stability constant.
    pub eps: f32,
    /// L2 weight-decay coefficient.
    pub weight_decay: f32,
    #[serde(skip)]
    m: Vec<Vec<f32>>,
    #[serde(skip)]
    v: Vec<Vec<f32>>,
    #[serde(skip)]
    t: u64,
}

impl Adam {
    /// Adam with standard betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
        }
    }

    /// Sets the L2 weight-decay coefficient.
    pub fn with_weight_decay(mut self, weight_decay: f32) -> Self {
        self.weight_decay = weight_decay;
        self
    }

    fn step(&mut self, model: &mut SequenceModel, batch_size: usize) {
        self.t += 1;
        let inv_b = 1.0 / batch_size as f32;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let mut slot = 0usize;
        for layer in model.layers_mut() {
            layer.visit_params(&mut |param, grad| {
                while self.m.len() <= slot {
                    self.m.push(Vec::new());
                    self.v.push(Vec::new());
                }
                if self.m[slot].len() != param.len() {
                    self.m[slot] = vec![0.0; param.len()];
                    self.v[slot] = vec![0.0; param.len()];
                }
                let (ms, vs) = (&mut self.m[slot], &mut self.v[slot]);
                for (((p, g), m), v) in
                    param.iter_mut().zip(grad.iter()).zip(ms.iter_mut()).zip(vs.iter_mut())
                {
                    let g = g * inv_b + self.weight_decay * *p;
                    *m = self.beta1 * *m + (1.0 - self.beta1) * g;
                    *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
                    let m_hat = *m / bc1;
                    let v_hat = *v / bc2;
                    *p -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
                }
                slot += 1;
            });
            layer.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{softmax_cross_entropy, SequenceModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> (SequenceModel, Vec<f32>) {
        let mut rng = StdRng::seed_from_u64(3);
        let model = SequenceModel::builder().linear(4, 3, &mut rng).build();
        (model, vec![1.0, -0.5, 0.25, 0.8])
    }

    fn train_once(opt: &mut Optimizer, steps: usize) -> f32 {
        let (mut model, x) = toy();
        let xs = vec![x];
        let mut loss = f32::NAN;
        for _ in 0..steps {
            let out = model.forward(&xs);
            let (l, dl) = softmax_cross_entropy(out.last().unwrap(), 2);
            loss = l;
            model.backward_from_logits(1, dl);
            opt.step(&mut model, 1);
        }
        loss
    }

    #[test]
    fn sgd_reduces_loss() {
        let mut opt: Optimizer = Sgd::new(0.5).into();
        let first = train_once(&mut opt, 1);
        let mut opt: Optimizer = Sgd::new(0.5).into();
        let last = train_once(&mut opt, 50);
        assert!(last < first * 0.5, "loss should drop: {first} -> {last}");
    }

    #[test]
    fn adam_reduces_loss() {
        let mut opt: Optimizer = Adam::new(0.05).into();
        let first = train_once(&mut opt, 1);
        let mut opt: Optimizer = Adam::new(0.05).into();
        let last = train_once(&mut opt, 50);
        assert!(last < first * 0.5, "loss should drop: {first} -> {last}");
    }

    #[test]
    fn momentum_accelerates_descent() {
        let mut plain: Optimizer = Sgd::new(0.1).into();
        let mut heavy: Optimizer = Sgd::new(0.1).with_momentum(0.9).into();
        let plain_loss = train_once(&mut plain, 30);
        let heavy_loss = train_once(&mut heavy, 30);
        assert!(heavy_loss < plain_loss, "momentum {heavy_loss} vs plain {plain_loss}");
    }

    fn weight_norm(model: &mut SequenceModel) -> f32 {
        let mut sq = 0.0;
        for l in model.layers_mut() {
            l.visit_params(&mut |p, _| sq += p.iter().map(|v| v * v).sum::<f32>());
        }
        sq.sqrt()
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let (mut model, x) = toy();
        let xs = vec![x];
        // Backward with a zero logit gradient: the only force is decay.
        let out = model.forward(&xs);
        let zeros = vec![0.0; out.last().unwrap().len()];
        model.backward_from_logits(1, zeros);
        let before = weight_norm(&mut model);
        let mut opt: Optimizer = Sgd::new(0.1).with_weight_decay(0.9).into();
        // Re-accumulate zero grads (weight_norm consumed none, but step zeroes).
        let out = model.forward(&xs);
        let zeros = vec![0.0; out.last().unwrap().len()];
        model.backward_from_logits(1, zeros);
        opt.step(&mut model, 1);
        let after = weight_norm(&mut model);
        assert!(after < before, "decay should shrink norm: {before} -> {after}");
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_rejected() {
        let (mut model, _) = toy();
        let mut opt: Optimizer = Sgd::new(0.1).into();
        opt.step(&mut model, 0);
    }
}

//! Classification losses.

use pelican_tensor::log_softmax_in_place;

/// Combined softmax + cross-entropy loss for a single sample.
///
/// Returns `(loss, dlogits)` where `dlogits = softmax(logits) − onehot(target)`,
/// the numerically-stable fused gradient. Fusing the two avoids the
/// catastrophic cancellation of differentiating through an explicit softmax.
///
/// # Panics
///
/// Panics if `target >= logits.len()` or `logits` is empty.
///
/// # Example
///
/// ```
/// let (loss, grad) = pelican_nn::softmax_cross_entropy(&[2.0, 0.0, 0.0], 0);
/// assert!(loss < 0.5, "confident correct prediction has low loss");
/// assert!(grad[0] < 0.0, "gradient pushes the target logit up");
/// ```
pub fn softmax_cross_entropy(logits: &[f32], target: usize) -> (f32, Vec<f32>) {
    assert!(!logits.is_empty(), "cannot compute a loss over zero classes");
    assert!(target < logits.len(), "target {target} out of range for {} classes", logits.len());
    let mut log_probs = logits.to_vec();
    log_softmax_in_place(&mut log_probs);
    let loss = -log_probs[target];
    let mut grad: Vec<f32> = log_probs.iter().map(|&lp| lp.exp()).collect();
    grad[target] -= 1.0;
    (loss, grad)
}

/// [`softmax_cross_entropy`] over a chunk of samples, in order.
///
/// Each `(logits, target)` pair is scored exactly as the scalar function
/// would score it, in slice order — so losses and gradients are
/// bit-identical to the sequential path, just gathered for the lockstep
/// training driver.
///
/// # Panics
///
/// Panics if any target is out of range or any logit row is empty.
pub fn softmax_cross_entropy_chunk(rows: &[(&[f32], usize)]) -> Vec<(f32, Vec<f32>)> {
    rows.iter().map(|&(logits, target)| softmax_cross_entropy(logits, target)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_matches_scalar_per_row() {
        let rows: Vec<(&[f32], usize)> = vec![(&[0.3, -0.7, 1.2], 2), (&[10.0, 0.0, -1.0], 1)];
        let chunk = softmax_cross_entropy_chunk(&rows);
        for (&(logits, target), got) in rows.iter().zip(&chunk) {
            assert_eq!(&softmax_cross_entropy(logits, target), got);
        }
    }

    #[test]
    fn uniform_logits_give_log_n_loss() {
        let (loss, _) = softmax_cross_entropy(&[0.0; 4], 2);
        assert!((loss - 4.0_f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_sums_to_zero() {
        let (_, grad) = softmax_cross_entropy(&[1.0, -2.0, 0.5, 3.0], 1);
        let sum: f32 = grad.iter().sum();
        assert!(sum.abs() < 1e-5, "softmax−onehot gradient sums to 0, got {sum}");
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = [0.3, -0.7, 1.2];
        let target = 2;
        let (_, grad) = softmax_cross_entropy(&logits, target);
        let eps = 1e-3;
        for j in 0..3 {
            let mut plus = logits;
            plus[j] += eps;
            let mut minus = logits;
            minus[j] -= eps;
            let fd = (softmax_cross_entropy(&plus, target).0
                - softmax_cross_entropy(&minus, target).0)
                / (2.0 * eps);
            assert!((grad[j] - fd).abs() < 1e-3, "dim {j}: {} vs {fd}", grad[j]);
        }
    }

    #[test]
    fn confident_wrong_prediction_has_high_loss() {
        let (loss, _) = softmax_cross_entropy(&[10.0, 0.0], 1);
        assert!(loss > 9.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_target() {
        let _ = softmax_cross_entropy(&[0.0, 0.0], 2);
    }
}

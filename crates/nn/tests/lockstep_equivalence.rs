//! Lockstep batched training vs. sequential training equivalence.
//!
//! The trainer pool groups same-shape user jobs into cohorts and trains
//! them through the fused lockstep kernels; every user's trained weights
//! must be *bit-identical* to training that user alone with
//! [`pelican_nn::fit`] — exact `f32` equality of the serialized model, no
//! tolerance — and the recorded FLOP counts must match exactly
//! (FLOP-count parity is what makes simulated training durations, and
//! hence every publication instant downstream, cohort-size-invariant).
//! Pinned at cohort sizes 1, 3 and 17, mirroring the batched-inference
//! equivalence suite, across all three personalization flavours the
//! pipeline uses: fresh models, frozen feature extractors, and warm
//! starts with dropout active.

use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

use pelican_nn::{
    fit, fit_lockstep, FitReport, LockstepJob, ModelEnvelope, Sample, SequenceModel, TrainConfig,
};
use pelican_tensor::ThreadFlopGuard;

const INPUT_DIM: usize = 5;
const CLASSES: usize = 5;

/// Deterministic per-user dataset with varied values and sizes.
fn samples(user: u64, n: usize) -> Vec<Sample> {
    let mut rng = StdRng::seed_from_u64(0xDA7A ^ user);
    (0..n)
        .map(|_| {
            let c = rng.random_range(0..CLASSES);
            let xs = (0..2)
                .map(|t| {
                    (0..INPUT_DIM)
                        .map(|j| {
                            ((c + t * 3 + j) as f32 * 0.41).sin() + rng.random_range(-0.1..0.1)
                        })
                        .collect()
                })
                .collect();
            Sample::new(xs, c)
        })
        .collect()
}

fn user_model(user: u64) -> SequenceModel {
    let mut rng = StdRng::seed_from_u64(0x5EED ^ user);
    SequenceModel::general_lstm(INPUT_DIM, 8, CLASSES, 0.1, &mut rng)
}

fn user_config(user: u64) -> TrainConfig {
    TrainConfig { epochs: 3, batch_size: 8, shuffle_seed: 0xF00D ^ user, ..TrainConfig::default() }
}

/// Runs `b` users sequentially and in one lockstep cohort; asserts
/// bit-exact weights, bit-exact fit reports and exact FLOP parity.
fn assert_cohort_equivalent(b: usize, prepare: impl Fn(u64) -> SequenceModel) {
    let users: Vec<u64> = (0..b as u64).collect();
    let datasets: Vec<Vec<Sample>> =
        users.iter().map(|&u| samples(u, 11 + (u as usize % 3) * 5)).collect();

    let mut seq_models: Vec<SequenceModel> = users.iter().map(|&u| prepare(u)).collect();
    let seq_guard = ThreadFlopGuard::start();
    let seq_reports: Vec<FitReport> = seq_models
        .iter_mut()
        .zip(&datasets)
        .zip(&users)
        .map(|((m, data), &u)| fit(m, data, &user_config(u)))
        .collect();
    let seq_flops = seq_guard.stop();

    let mut lock_models: Vec<SequenceModel> = users.iter().map(|&u| prepare(u)).collect();
    let mut jobs: Vec<LockstepJob> = lock_models
        .iter_mut()
        .zip(&datasets)
        .zip(&users)
        .map(|((model, data), &u)| LockstepJob { model, samples: data, config: user_config(u) })
        .collect();
    let lock_guard = ThreadFlopGuard::start();
    let outcomes = fit_lockstep(&mut jobs);
    let lock_flops = lock_guard.stop();

    assert_eq!(seq_flops, lock_flops, "cohort of {b}: FLOP parity broken");
    let attributed: u64 = outcomes.iter().map(|o| o.flops).sum();
    assert_eq!(
        attributed, lock_flops,
        "cohort of {b}: per-user FLOP attribution must partition the total"
    );
    for (u, ((seq, lock), (outcome, report))) in
        seq_models.iter().zip(&lock_models).zip(outcomes.iter().zip(&seq_reports)).enumerate()
    {
        assert_eq!(&outcome.fit, report, "cohort of {b}: user {u} fit report diverged");
        assert_eq!(
            ModelEnvelope::encode(seq),
            ModelEnvelope::encode(lock),
            "cohort of {b}: user {u} weights diverged from sequential training"
        );
    }
}

#[test]
fn fresh_models_bit_identical_at_1_3_17() {
    for b in [1usize, 3, 17] {
        assert_cohort_equivalent(b, user_model);
    }
}

#[test]
fn frozen_feature_extractors_bit_identical() {
    // Transfer-learning flavour: everything frozen except the head. The
    // fused backward must skip frozen-layer gradient accumulation (and
    // its FLOPs) exactly as the sequential path does.
    for b in [1usize, 3] {
        assert_cohort_equivalent(b, |u| {
            let mut m = user_model(u);
            m.freeze_all();
            let last = m.layers().len() - 1;
            m.layers_mut()[last].set_trainable(true);
            m
        });
    }
}

#[test]
fn sgd_momentum_cohort_bit_identical() {
    let users: Vec<u64> = (0..3u64).collect();
    let datasets: Vec<Vec<Sample>> = users.iter().map(|&u| samples(u, 13)).collect();
    let config = |u: u64| TrainConfig {
        epochs: 2,
        batch_size: 4,
        optimizer: pelican_nn::train::OptimizerKind::Sgd,
        shuffle_seed: 0xBEEF ^ u,
        ..TrainConfig::default()
    };
    let mut seq_models: Vec<SequenceModel> = users.iter().map(|&u| user_model(u)).collect();
    for ((m, data), &u) in seq_models.iter_mut().zip(&datasets).zip(&users) {
        fit(m, data, &config(u));
    }
    let mut lock_models: Vec<SequenceModel> = users.iter().map(|&u| user_model(u)).collect();
    let mut jobs: Vec<LockstepJob> = lock_models
        .iter_mut()
        .zip(&datasets)
        .zip(&users)
        .map(|((model, data), &u)| LockstepJob { model, samples: data, config: config(u) })
        .collect();
    fit_lockstep(&mut jobs);
    for (seq, lock) in seq_models.iter().zip(&lock_models) {
        assert_eq!(ModelEnvelope::encode(seq), ModelEnvelope::encode(lock));
    }
}

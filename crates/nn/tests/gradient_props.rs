//! Property-based gradient checks: analytic backprop must agree with
//! central finite differences for arbitrary small architectures — the
//! invariant the gradient-descent inversion attack depends on.

use proptest::prelude::*;

use pelican_nn::{softmax_cross_entropy, Sequence, SequenceModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn ce_loss(model: &SequenceModel, xs: &Sequence, target: usize) -> f32 {
    softmax_cross_entropy(&model.logits(xs), target).0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn input_gradients_match_finite_differences(
        input_dim in 2usize..6,
        hidden in 2usize..6,
        classes in 2usize..5,
        seq_len in 1usize..4,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model = SequenceModel::general_lstm(input_dim, hidden, classes, 0.0, &mut rng);
        let xs: Sequence = (0..seq_len)
            .map(|t| (0..input_dim).map(|j| ((seed as usize + t * 7 + j * 3) % 11) as f32 / 11.0 - 0.5).collect())
            .collect();
        let target = (seed as usize) % classes;
        let (_, grads) = model.input_gradient(&xs, target);
        let eps = 1e-2;
        for t in 0..seq_len {
            for j in 0..input_dim {
                let mut plus = xs.clone();
                plus[t][j] += eps;
                let mut minus = xs.clone();
                minus[t][j] -= eps;
                let fd = (ce_loss(&model, &plus, target) - ce_loss(&model, &minus, target)) / (2.0 * eps);
                prop_assert!(
                    (grads[t][j] - fd).abs() < 3e-2,
                    "t={t} j={j}: analytic {} vs fd {fd}",
                    grads[t][j]
                );
            }
        }
    }

    #[test]
    fn frozen_layers_keep_exact_weights_during_training(
        seed in 0u64..10_000,
        epochs in 1usize..4,
    ) {
        use pelican_nn::{fit, Sample, TrainConfig};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model = SequenceModel::general_lstm(4, 5, 3, 0.1, &mut rng);
        // Freeze the first LSTM only.
        model.layers_mut()[0].set_trainable(false);
        let weights_of = |m: &SequenceModel| match &m.layers()[0] {
            pelican_nn::Layer::Lstm(l) => {
                (l.weight_ih().clone(), l.weight_hh().clone(), l.bias().to_vec())
            }
            _ => unreachable!("first layer is an LSTM"),
        };
        let frozen_before = weights_of(&model);
        let samples: Vec<Sample> = (0..12)
            .map(|i| {
                let mut x = vec![0.0; 4];
                x[i % 4] = 1.0;
                Sample::new(vec![x.clone(), x], i % 3)
            })
            .collect();
        fit(&mut model, &samples, &TrainConfig { epochs, ..TrainConfig::default() });
        let frozen_after = weights_of(&model);
        prop_assert_eq!(frozen_before, frozen_after, "frozen layer must not move");
    }

    #[test]
    fn training_never_produces_nan(
        seed in 0u64..10_000,
        lr in 1e-4f32..5e-2,
    ) {
        use pelican_nn::{fit, Sample, TrainConfig};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model = SequenceModel::general_lstm(4, 6, 3, 0.1, &mut rng);
        let samples: Vec<Sample> = (0..16)
            .map(|i| {
                let mut x = vec![0.0; 4];
                x[i % 4] = 1.0;
                Sample::new(vec![x.clone(), x], i % 3)
            })
            .collect();
        let report = fit(
            &mut model,
            &samples,
            &TrainConfig { epochs: 3, lr, ..TrainConfig::default() },
        );
        for loss in &report.epoch_losses {
            prop_assert!(loss.is_finite(), "loss diverged to {loss}");
        }
        let p = model.predict_proba(&samples[0].xs);
        prop_assert!(p.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn logits_are_deterministic_at_inference(
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = SequenceModel::general_lstm(5, 6, 4, 0.5, &mut rng);
        let xs = vec![vec![0.3; 5], vec![-0.2; 5]];
        // Dropout must not fire at inference, no matter its rate.
        prop_assert_eq!(model.logits(&xs), model.logits(&xs));
        prop_assert_eq!(model.predict_proba(&xs), model.predict_proba(&xs));
    }
}

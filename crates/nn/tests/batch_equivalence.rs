//! Batched vs. sequential inference equivalence.
//!
//! The fleet-serving subsystem coalesces same-model queries into fused
//! batches; every answer it returns must be *bit-identical* to the answer
//! the same query would get alone. These tests pin that contract — exact
//! `f32` equality, no tolerance — across batch sizes 1, 3 and 17, for raw
//! logits, temperature-sharpened confidences (the privacy layer), every
//! confidence post-processing mode, and top-k rankings.

use rand::rngs::StdRng;
use rand::SeedableRng;

use pelican_nn::{Postprocess, Sequence, SequenceModel};
use pelican_tensor::FlopGuard;

const INPUT_DIM: usize = 6;

fn model() -> SequenceModel {
    let mut rng = StdRng::seed_from_u64(33);
    SequenceModel::general_lstm(INPUT_DIM, 10, 5, 0.1, &mut rng)
}

/// Deterministic query pool with varied values and ragged lengths (1–4
/// timesteps) so the batch path's active-set handling is exercised.
fn queries(n: usize) -> Vec<Sequence> {
    (0..n)
        .map(|i| {
            let len = 1 + i % 4;
            (0..len)
                .map(|t| {
                    (0..INPUT_DIM).map(|j| ((i * 31 + t * 7 + j * 3) as f32 * 0.37).sin()).collect()
                })
                .collect()
        })
        .collect()
}

#[test]
fn batched_probabilities_are_bit_identical() {
    let m = model();
    let qs = queries(17);
    for b in [1usize, 3, 17] {
        let batch = &qs[..b];
        let fused = m.predict_proba_batch(batch);
        assert_eq!(fused.len(), b);
        for (q, got) in batch.iter().zip(&fused) {
            assert_eq!(&m.predict_proba(q), got, "batch size {b} diverged from sequential");
        }
    }
}

#[test]
fn privacy_sharpened_batches_stay_bit_identical() {
    let mut m = model();
    m.set_temperature(1e-3);
    let qs = queries(17);
    for b in [1usize, 3, 17] {
        let batch = &qs[..b];
        for (q, got) in batch.iter().zip(m.predict_proba_batch(batch)) {
            assert_eq!(m.predict_proba(q), got, "sharpening must apply per row (batch {b})");
        }
    }
}

#[test]
fn postprocessing_applies_per_row() {
    // Noise is seeded by a per-query hash; a batch must hash each row
    // individually or batched answers would drift from unbatched ones.
    for post in
        [Postprocess::GaussianNoise { sigma: 0.05, seed: 9 }, Postprocess::Round { decimals: 2 }]
    {
        let mut m = model();
        m.set_postprocess(post);
        let qs = queries(17);
        for b in [1usize, 3, 17] {
            let batch = &qs[..b];
            for (q, got) in batch.iter().zip(m.predict_proba_batch(batch)) {
                assert_eq!(m.predict_proba(q), got, "{post:?} diverged at batch {b}");
            }
        }
    }
}

#[test]
fn batched_rankings_match_sequential() {
    let m = model();
    let qs = queries(17);
    for b in [1usize, 3, 17] {
        let batch = &qs[..b];
        let fused = m.predict_top_k_batch(batch, 3);
        for (q, got) in batch.iter().zip(&fused) {
            assert_eq!(&m.predict_top_k(q, 3), got);
        }
    }
}

#[test]
fn batched_flop_accounting_matches_sequential() {
    // Platform cost simulation depends on FLOP counts; fusing a batch must
    // report exactly the work the individual queries would have reported.
    let m = model();
    let qs = queries(17);
    let sequential = {
        let guard = FlopGuard::start();
        for q in &qs {
            let _ = m.predict_proba(q);
        }
        guard.stop()
    };
    let batched = {
        let guard = FlopGuard::start();
        let _ = m.predict_proba_batch(&qs);
        guard.stop()
    };
    assert_eq!(sequential, batched, "fused batches must account identical FLOPs");
}

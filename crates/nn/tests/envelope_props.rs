//! Property test: the binary model envelope is a lossless wire format.
//!
//! The serving registry keeps cold models as envelope bytes and decodes
//! them on a cache miss, so a single flipped mantissa bit would silently
//! change what a user's model answers after eviction. Round-tripping must
//! therefore preserve every parameter *bit-exactly* — not approximately —
//! for arbitrary small architectures, temperatures and freeze patterns.

use proptest::prelude::*;

use pelican_nn::{Layer, ModelEnvelope, Postprocess, SequenceModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn assert_bits_eq(label: &str, a: &[f32], b: &[f32]) -> Result<(), String> {
    if a.len() != b.len() {
        return Err(format!("{label}: length {} vs {}", a.len(), b.len()));
    }
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        if x.to_bits() != y.to_bits() {
            return Err(format!("{label}[{i}]: {x:?} vs {y:?} differ in bits"));
        }
    }
    Ok(())
}

fn layers_bit_equal(original: &SequenceModel, decoded: &SequenceModel) -> Result<(), String> {
    if original.layers().len() != decoded.layers().len() {
        return Err("layer count changed".into());
    }
    for (i, (a, b)) in original.layers().iter().zip(decoded.layers()).enumerate() {
        match (a, b) {
            (Layer::Lstm(a), Layer::Lstm(b)) => {
                assert_bits_eq("w_ih", a.weight_ih().as_slice(), b.weight_ih().as_slice())?;
                assert_bits_eq("w_hh", a.weight_hh().as_slice(), b.weight_hh().as_slice())?;
                assert_bits_eq("lstm bias", a.bias(), b.bias())?;
                if a.trainable != b.trainable {
                    return Err(format!("layer {i}: trainable flag changed"));
                }
            }
            (Layer::Linear(a), Layer::Linear(b)) => {
                assert_bits_eq("w", a.weight().as_slice(), b.weight().as_slice())?;
                assert_bits_eq("linear bias", a.bias(), b.bias())?;
                if a.trainable != b.trainable {
                    return Err(format!("layer {i}: trainable flag changed"));
                }
            }
            (Layer::Dropout(a), Layer::Dropout(b)) => {
                if a.rate().to_bits() != b.rate().to_bits() {
                    return Err(format!("layer {i}: dropout rate changed"));
                }
            }
            _ => return Err(format!("layer {i}: kind changed")),
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn envelope_round_trip_is_bit_exact(
        input_dim in 1usize..6,
        hidden in 1usize..7,
        classes in 2usize..6,
        deep in 0usize..2,
        seed in 0u64..10_000,
        temp_millis in 1u32..=1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut builder = SequenceModel::builder().lstm(input_dim, hidden, &mut rng);
        if deep == 1 {
            builder = builder.dropout(0.25, seed).lstm(hidden, hidden, &mut rng);
        }
        let mut model = builder.linear(hidden, classes, &mut rng).build();
        model.set_temperature(temp_millis as f32 / 1000.0);
        if seed % 2 == 0 {
            model.layers_mut()[0].set_trainable(false);
        }
        model.set_postprocess(match seed % 3 {
            0 => Postprocess::None,
            1 => Postprocess::GaussianNoise { sigma: temp_millis as f32 / 10_000.0, seed },
            _ => Postprocess::Round { decimals: (seed % 6) as u32 },
        });

        let decoded = ModelEnvelope::encode(&model).decode().expect("round trip decodes");
        prop_assert_eq!(model.temperature().to_bits(), decoded.temperature().to_bits());
        prop_assert_eq!(model.postprocess(), decoded.postprocess());
        if let Err(msg) = layers_bit_equal(&model, &decoded) {
            prop_assert!(false, "{}", msg);
        }

        // Bit-exact parameters imply bit-exact behaviour; spot-check it.
        let xs = vec![vec![0.31f32; input_dim]; 2];
        prop_assert_eq!(model.predict_proba(&xs), decoded.predict_proba(&xs));
    }
}

//! Closed-loop A/B experimentation of defense rungs under live traffic.
//!
//! The audit gate answers "how much does this rung leak?" with the model
//! in hand — an offline oracle. This crate answers the question a
//! provider actually faces: *given two candidate defense rungs, which one
//! should the fleet run?* — and answers it the only way that reflects
//! deployment, through the serving interface, under background load, on
//! the simulator's virtual clock:
//!
//! * [`splitter`] — seeded hash-based cohort assignment: disjoint,
//!   stable, permutation-invariant A / B / holdout splits;
//! * [`publisher`] — per-arm training and durable publication; treatment
//!   users retain the *other* arm's rung as a shadow version so the
//!   losing cohort's flip-back is a store rollback, not a retrain;
//! * [`verdict`] — per-arm leakage (attack advantage over each user's
//!   own prior baseline) and latency accumulation, and the
//!   promote / null decision with its latency guard;
//! * [`flow`] — the composed reactive workload: background traffic,
//!   front-door adversaries paying real queue and wire latency,
//!   checkpoint verdicts, and the promote / flip-back rollout while
//!   queries keep flowing;
//! * [`report`] — the experiment record and its determinism fingerprint.
//!
//! The `ab-report` experiment in the bench harness drives all of this
//! end-to-end and asserts the contracts: cohorts disjoint and
//! seed-stable, A/A runs decide null, fingerprints identical across
//! trainer-pool widths, and zero degraded responses after a flip lands.

pub mod flow;
pub mod publisher;
pub mod report;
pub mod splitter;
pub mod verdict;

pub use flow::{run_abx, AbxConfig, AbxError};
pub use publisher::{defended, publish_arms, ArmPublication};
pub use report::{AbxOutcome, AttackRecord, PublicationRecord, SwapKind, SwapRecord};
pub use splitter::{Arm, CohortSplit, CohortSplitter};
pub use verdict::{prior_hit_rate, ArmStats, Verdict, VerdictConfig, VerdictEngine};

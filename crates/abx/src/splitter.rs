//! Seeded, stable, disjoint cohort assignment.
//!
//! An A/B experiment is only as trustworthy as its split. The splitter
//! hashes `(seed, user_id)` through the same [`mix64`] finalizer the
//! simulator's link mixes use and thresholds the result, which buys the
//! three properties every downstream verdict leans on:
//!
//! * **disjoint and exhaustive** — every user lands in exactly one of
//!   [`Arm::A`], [`Arm::B`] or [`Arm::Holdout`];
//! * **stable** — assignment is a pure function of `(seed, user_id)`:
//!   re-running the experiment, adding users, or asking twice never moves
//!   anyone between arms;
//! * **permutation-invariant** — the split of a user set does not depend
//!   on the order the users are presented in.
//!
//! These are asserted as property tests in `tests/splitter_props.rs` and
//! re-checked (on the concrete cohort) by the `ab-report` experiment
//! before any leakage number is trusted.

use pelican_sim::mix64;

/// Which cohort a user serves their experiment from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arm {
    /// First treatment arm (defense rung `arms[0]`).
    A,
    /// Second treatment arm (defense rung `arms[1]`).
    B,
    /// Out of the experiment: base publication, untouched until a winner
    /// is promoted fleet-wide.
    Holdout,
}

impl Arm {
    /// Dense cohort index: A = 0, B = 1, holdout = 2 — the registry
    /// cohort label ([`pelican_serve::ShardedRegistry::set_cohort`]) and
    /// the index into per-arm accumulators.
    pub fn index(self) -> usize {
        match self {
            Arm::A => 0,
            Arm::B => 1,
            Arm::Holdout => 2,
        }
    }

    /// The opposite treatment arm.
    ///
    /// # Panics
    ///
    /// Panics on [`Arm::Holdout`] — the holdout has no counterpart.
    pub fn other(self) -> Arm {
        match self {
            Arm::A => Arm::B,
            Arm::B => Arm::A,
            Arm::Holdout => panic!("the holdout arm has no counterpart"),
        }
    }

    /// Human-readable arm name.
    pub fn name(self) -> &'static str {
        match self {
            Arm::A => "A",
            Arm::B => "B",
            Arm::Holdout => "holdout",
        }
    }
}

impl std::fmt::Display for Arm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Hash-based A/B/holdout assignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CohortSplitter {
    seed: u64,
    fraction_a: f64,
    fraction_b: f64,
}

impl CohortSplitter {
    /// A splitter sending roughly `fraction_a` of users to arm A,
    /// `fraction_b` to arm B and the rest to the holdout.
    ///
    /// # Panics
    ///
    /// Panics unless both fractions are in `[0, 1]` and sum to at most 1.
    pub fn new(seed: u64, fraction_a: f64, fraction_b: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction_a)
                && (0.0..=1.0).contains(&fraction_b)
                && fraction_a + fraction_b <= 1.0,
            "arm fractions must be in [0, 1] and sum to at most 1 \
             (got {fraction_a} + {fraction_b})"
        );
        Self { seed, fraction_a, fraction_b }
    }

    /// The splitter's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The user's unit-interval coordinate — the quantity the thresholds
    /// cut. Exposed so tests can reason about the distribution directly.
    pub fn unit(&self, user_id: usize) -> f64 {
        // Finalize the seed and the user id separately before combining:
        // consecutive user ids must land far apart, and two splitters
        // with different seeds must disagree on most users.
        let h = mix64(mix64(self.seed) ^ mix64(user_id as u64 ^ 0xA5A5_5A5A_0BAD_CAFE));
        // 53 explicit mantissa bits keep the conversion exact.
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The user's arm — pure in `(seed, user_id)`.
    pub fn assign(&self, user_id: usize) -> Arm {
        let u = self.unit(user_id);
        if u < self.fraction_a {
            Arm::A
        } else if u < self.fraction_a + self.fraction_b {
            Arm::B
        } else {
            Arm::Holdout
        }
    }

    /// Splits a user set into its three cohorts, each sorted ascending.
    /// The result is invariant under permutation (and duplication) of
    /// the input.
    pub fn split(&self, users: impl IntoIterator<Item = usize>) -> CohortSplit {
        let mut split = CohortSplit::default();
        for user_id in users {
            match self.assign(user_id) {
                Arm::A => split.a.push(user_id),
                Arm::B => split.b.push(user_id),
                Arm::Holdout => split.holdout.push(user_id),
            }
        }
        for cohort in [&mut split.a, &mut split.b, &mut split.holdout] {
            cohort.sort_unstable();
            cohort.dedup();
        }
        split
    }
}

/// A concrete three-way partition of a user set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CohortSplit {
    /// Arm-A users, ascending.
    pub a: Vec<usize>,
    /// Arm-B users, ascending.
    pub b: Vec<usize>,
    /// Holdout users, ascending.
    pub holdout: Vec<usize>,
}

impl CohortSplit {
    /// Total users across the three cohorts.
    pub fn len(&self) -> usize {
        self.a.len() + self.b.len() + self.holdout.len()
    }

    /// Whether the split is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The arm a user was assigned, or `None` for users outside the
    /// split.
    pub fn arm_of(&self, user_id: usize) -> Option<Arm> {
        if self.a.binary_search(&user_id).is_ok() {
            Some(Arm::A)
        } else if self.b.binary_search(&user_id).is_ok() {
            Some(Arm::B)
        } else if self.holdout.binary_search(&user_id).is_ok() {
            Some(Arm::Holdout)
        } else {
            None
        }
    }

    /// The treatment cohort of an arm.
    ///
    /// # Panics
    ///
    /// Panics on [`Arm::Holdout`] — use the field directly.
    pub fn arm(&self, arm: Arm) -> &[usize] {
        match arm {
            Arm::A => &self.a,
            Arm::B => &self.b,
            Arm::Holdout => panic!("arm() is for treatment cohorts; read .holdout directly"),
        }
    }

    /// Asserts the three cohorts are pairwise disjoint and cover exactly
    /// `expected` (any order, duplicates ignored). The `ab-report`
    /// experiment runs this on every run — a broken split silently
    /// corrupts every downstream number, so it is a hard stop.
    ///
    /// # Panics
    ///
    /// Panics if any user appears in two cohorts or the union differs
    /// from `expected`.
    pub fn assert_partitions(&self, expected: impl IntoIterator<Item = usize>) {
        let mut union: Vec<usize> =
            self.a.iter().chain(&self.b).chain(&self.holdout).copied().collect();
        union.sort_unstable();
        assert!(union.windows(2).all(|w| w[0] != w[1]), "cohorts overlap: {union:?}");
        let mut expected: Vec<usize> = expected.into_iter().collect();
        expected.sort_unstable();
        expected.dedup();
        assert_eq!(union, expected, "cohorts must cover the user set exactly");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_is_stable_and_partitions() {
        let splitter = CohortSplitter::new(0xAB, 0.4, 0.4);
        let split = splitter.split(0..100);
        split.assert_partitions(0..100);
        assert_eq!(split.len(), 100);
        for user in 0..100 {
            assert_eq!(split.arm_of(user), Some(splitter.assign(user)), "user {user}");
            assert_eq!(splitter.assign(user), splitter.assign(user));
        }
        assert_eq!(split.arm_of(100), None);
        // All three cohorts are populated at these fractions and size.
        assert!(!split.a.is_empty() && !split.b.is_empty() && !split.holdout.is_empty());
    }

    #[test]
    fn permutation_and_duplicates_do_not_move_anyone() {
        let splitter = CohortSplitter::new(7, 0.3, 0.3);
        let forward = splitter.split(0..50);
        let backward = splitter.split((0..50).rev());
        let doubled = splitter.split((0..50).chain(0..50));
        assert_eq!(forward, backward);
        assert_eq!(forward, doubled);
    }

    #[test]
    fn different_seeds_disagree() {
        let a = CohortSplitter::new(1, 0.4, 0.4).split(0..200);
        let b = CohortSplitter::new(2, 0.4, 0.4).split(0..200);
        assert_ne!(a, b, "two seeds agreeing on 200 users means the hash ignores the seed");
    }

    #[test]
    fn fractions_steer_the_split() {
        let all_a = CohortSplitter::new(3, 1.0, 0.0).split(0..64);
        assert_eq!(all_a.a.len(), 64);
        let all_holdout = CohortSplitter::new(3, 0.0, 0.0).split(0..64);
        assert_eq!(all_holdout.holdout.len(), 64);
        let units: Vec<f64> = (0..64).map(|u| CohortSplitter::new(3, 0.5, 0.5).unit(u)).collect();
        assert!(units.iter().all(|&u| (0.0..1.0).contains(&u)));
    }

    #[test]
    #[should_panic(expected = "sum to at most 1")]
    fn overfull_fractions_are_rejected() {
        CohortSplitter::new(0, 0.7, 0.7);
    }

    #[test]
    fn arm_helpers() {
        assert_eq!(Arm::A.other(), Arm::B);
        assert_eq!(Arm::B.other(), Arm::A);
        assert_eq!(Arm::A.index(), 0);
        assert_eq!(Arm::Holdout.index(), 2);
        assert_eq!(format!("{}", Arm::Holdout), "holdout");
    }
}

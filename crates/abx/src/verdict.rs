//! Per-arm accumulation and the promote / flip-back decision.
//!
//! The engine ingests two streams while the experiment serves: every
//! completion of a treatment-arm user (the latency evidence, split into
//! queue and service like the serving report) and every finished
//! served-interface attack (the leakage evidence). At a checkpoint with
//! all attacks home, [`VerdictEngine::decide`] turns the accumulators
//! into one [`Verdict`]:
//!
//! * leakage per arm is the mean attack hit rate at the audit cutoff
//!   **minus the prior baseline** — the advantage over an adversary who
//!   never queried the model. Differencing out each attacked user's own
//!   baseline removes the between-cohort composition noise an A/A run
//!   would otherwise read as signal;
//! * if the arms' advantages are within `null_margin`, the verdict is
//!   [`Verdict::Null`] — the rungs are indistinguishable under live
//!   traffic and nobody moves (the A/A contract);
//! * otherwise the lower-advantage arm wins — unless its p95 latency is
//!   more than `latency_margin_us` worse than the loser's, in which case
//!   the privacy win costs too much tail latency and the verdict is
//!   null too.

use pelican_attacks::{Instance, Prior};
use pelican_mobility::FeatureSpace;

use crate::splitter::Arm;

/// Decision thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VerdictConfig {
    /// The top-k cutoff leakage is judged at (must be in the attack's
    /// evaluated grid).
    pub audit_k: usize,
    /// Advantage gap below which the arms are declared indistinguishable.
    pub null_margin: f64,
    /// Maximum p95 latency regression the winning rung may cost.
    pub latency_margin_us: u64,
}

impl Default for VerdictConfig {
    fn default() -> Self {
        Self { audit_k: 3, null_margin: 0.05, latency_margin_us: 1_000_000 }
    }
}

/// One treatment arm's accumulated evidence, frozen at decision time.
#[derive(Debug, Clone, PartialEq)]
pub struct ArmStats {
    /// Users assigned to the arm.
    pub cohort: usize,
    /// Users actually attacked through the serving interface.
    pub attacked: usize,
    /// Deduplicated attack queries that crossed the wire.
    pub wire_queries: u64,
    /// Mean attack hit rate at the audit cutoff.
    pub leakage: f64,
    /// Mean prior-only baseline at the same cutoff.
    pub baseline: f64,
    /// `leakage - baseline` — the decision statistic.
    pub advantage: f64,
    /// Completions observed for the arm's users.
    pub served: usize,
    /// Median end-to-end scheduler latency, µs.
    pub latency_p50_us: u64,
    /// 95th-percentile end-to-end scheduler latency, µs.
    pub latency_p95_us: u64,
    /// Median shard queueing, µs.
    pub queue_p50_us: u64,
    /// 95th-percentile shard queueing, µs.
    pub queue_p95_us: u64,
    /// Median fused service time, µs.
    pub service_p50_us: u64,
    /// 95th-percentile fused service time, µs.
    pub service_p95_us: u64,
}

/// The checkpoint decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Verdict {
    /// The arms are indistinguishable (or the winner failed the latency
    /// guard): nobody moves.
    Null {
        /// `advantage(A) - advantage(B)` at decision time.
        delta: f64,
    },
    /// One rung demonstrably leaks less at acceptable latency: the
    /// losing cohort flips to it and the holdout adopts it.
    Promote {
        /// The arm whose rung is deployed fleet-wide.
        winner: Arm,
        /// `advantage(A) - advantage(B)` at decision time.
        delta: f64,
    },
}

impl Verdict {
    /// The winning arm, if the verdict promotes one.
    pub fn winner(&self) -> Option<Arm> {
        match self {
            Verdict::Null { .. } => None,
            Verdict::Promote { winner, .. } => Some(*winner),
        }
    }

    /// The advantage gap the decision was made on.
    pub fn delta(&self) -> f64 {
        match self {
            Verdict::Null { delta } | Verdict::Promote { delta, .. } => *delta,
        }
    }

    /// Whether nobody moves.
    pub fn is_null(&self) -> bool {
        matches!(self, Verdict::Null { .. })
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Verdict::Null { delta } => write!(f, "null (Δadvantage {delta:+.4})"),
            Verdict::Promote { winner, delta } => {
                write!(f, "promote arm {winner} (Δadvantage {delta:+.4})")
            }
        }
    }
}

/// Fraction of instances whose true location sits in the prior's top-k —
/// what an adversary scores *without ever querying the model*. Ties at
/// the cutoff keep the lowest location indices, mirroring
/// [`pelican_attacks::truncate_top_k`].
pub fn prior_hit_rate(
    prior: &Prior,
    space: &FeatureSpace,
    instances: &[Instance],
    k: usize,
) -> f64 {
    if instances.is_empty() {
        return 0.0;
    }
    let mut order: Vec<usize> = (0..prior.len()).collect();
    order.sort_by(|&a, &b| {
        prior
            .prob(b)
            .partial_cmp(&prior.prob(a))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let top = &order[..k.min(order.len())];
    let hits =
        instances.iter().filter(|inst| top.contains(&space.location_of(&inst.truth))).count();
    hits as f64 / instances.len() as f64
}

#[derive(Debug, Clone, Default)]
struct ArmAcc {
    cohort: usize,
    latencies_us: Vec<u64>,
    queues_us: Vec<u64>,
    services_us: Vec<u64>,
    accuracies: Vec<f64>,
    baselines: Vec<f64>,
    wire_queries: u64,
}

/// Accumulates per-arm evidence during the run and renders the decision.
#[derive(Debug, Clone)]
pub struct VerdictEngine {
    config: VerdictConfig,
    arms: [ArmAcc; 2],
}

impl VerdictEngine {
    /// An empty engine over cohorts of the given sizes (`[A, B]`).
    pub fn new(config: VerdictConfig, cohorts: [usize; 2]) -> Self {
        let mut arms = [ArmAcc::default(), ArmAcc::default()];
        arms[0].cohort = cohorts[0];
        arms[1].cohort = cohorts[1];
        Self { config, arms }
    }

    fn acc(&mut self, arm: Arm) -> &mut ArmAcc {
        assert_ne!(arm, Arm::Holdout, "the holdout is not under test");
        &mut self.arms[arm.index()]
    }

    /// Ingests one completion of an arm user: the scheduler's
    /// queue/service split plus the end-to-end latency.
    pub fn observe_completion(
        &mut self,
        arm: Arm,
        queue_us: u64,
        service_us: u64,
        latency_us: u64,
    ) {
        let acc = self.acc(arm);
        acc.queues_us.push(queue_us);
        acc.services_us.push(service_us);
        acc.latencies_us.push(latency_us);
    }

    /// Ingests one finished served-interface attack: hit rate at the
    /// audit cutoff, that user's prior baseline, and the wire cost.
    pub fn record_attack(&mut self, arm: Arm, accuracy: f64, baseline: f64, wire_queries: u64) {
        let acc = self.acc(arm);
        acc.accuracies.push(accuracy);
        acc.baselines.push(baseline);
        acc.wire_queries += wire_queries;
    }

    /// Freezes the accumulators and decides; see the module docs for the
    /// rules.
    pub fn decide(&self) -> (Verdict, [ArmStats; 2]) {
        let stats: [ArmStats; 2] = [self.stats_of(0), self.stats_of(1)];
        let delta = stats[0].advantage - stats[1].advantage;
        let verdict = if delta.abs() <= self.config.null_margin {
            Verdict::Null { delta }
        } else {
            let winner = if delta > 0.0 { Arm::B } else { Arm::A };
            let (w, l) = (&stats[winner.index()], &stats[winner.other().index()]);
            if w.latency_p95_us > l.latency_p95_us.saturating_add(self.config.latency_margin_us) {
                Verdict::Null { delta }
            } else {
                Verdict::Promote { winner, delta }
            }
        };
        (verdict, stats)
    }

    fn stats_of(&self, index: usize) -> ArmStats {
        let acc = &self.arms[index];
        let mean = |xs: &[f64]| {
            if xs.is_empty() {
                0.0
            } else {
                xs.iter().sum::<f64>() / xs.len() as f64
            }
        };
        let pct = |xs: &[u64], q: f64| {
            let mut sorted = xs.to_vec();
            sorted.sort_unstable();
            pelican_tensor::nearest_rank(&sorted, q).unwrap_or(0)
        };
        let leakage = mean(&acc.accuracies);
        let baseline = mean(&acc.baselines);
        ArmStats {
            cohort: acc.cohort,
            attacked: acc.accuracies.len(),
            wire_queries: acc.wire_queries,
            leakage,
            baseline,
            advantage: leakage - baseline,
            served: acc.latencies_us.len(),
            latency_p50_us: pct(&acc.latencies_us, 0.50),
            latency_p95_us: pct(&acc.latencies_us, 0.95),
            queue_p50_us: pct(&acc.queues_us, 0.50),
            queue_p95_us: pct(&acc.queues_us, 0.95),
            service_p50_us: pct(&acc.services_us, 0.50),
            service_p95_us: pct(&acc.services_us, 0.95),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pelican_attacks::Adversary;
    use pelican_mobility::{Session, SpatialLevel};

    fn engine(null_margin: f64) -> VerdictEngine {
        VerdictEngine::new(
            VerdictConfig { audit_k: 3, null_margin, latency_margin_us: 1_000 },
            [4, 4],
        )
    }

    #[test]
    fn close_arms_read_null_and_distant_arms_promote() {
        let mut e = engine(0.1);
        e.record_attack(Arm::A, 0.50, 0.25, 100);
        e.record_attack(Arm::B, 0.45, 0.25, 90);
        let (verdict, stats) = e.decide();
        assert!(verdict.is_null(), "0.05 gap is inside a 0.1 margin: {verdict}");
        assert_eq!(stats[0].attacked, 1);
        assert!((stats[0].advantage - 0.25).abs() < 1e-12);

        let mut e = engine(0.1);
        e.record_attack(Arm::A, 0.80, 0.20, 100);
        e.record_attack(Arm::B, 0.25, 0.20, 90);
        let (verdict, _) = e.decide();
        assert_eq!(verdict.winner(), Some(Arm::B), "the less-leaky arm wins");
        assert!(verdict.delta() > 0.0);
    }

    #[test]
    fn baselines_difference_out_cohort_composition() {
        // Arm A's users are simply easier to guess from the prior alone;
        // raw hit rates differ but advantages agree — an A/A must be null.
        let mut e = engine(0.05);
        e.record_attack(Arm::A, 0.60, 0.55, 10);
        e.record_attack(Arm::B, 0.20, 0.15, 10);
        assert!(e.decide().0.is_null());
    }

    #[test]
    fn a_latency_regression_vetoes_the_promotion() {
        let mut e = engine(0.05);
        e.record_attack(Arm::A, 0.9, 0.1, 10);
        e.record_attack(Arm::B, 0.1, 0.1, 10);
        // Arm B wins on leakage but its p95 is 5 ms worse than A's
        // against a 1 ms margin.
        for _ in 0..20 {
            e.observe_completion(Arm::A, 10, 100, 1_000);
            e.observe_completion(Arm::B, 10, 100, 6_000);
        }
        let (verdict, stats) = e.decide();
        assert!(verdict.is_null(), "a 5 ms tail regression must veto: {verdict}");
        assert_eq!(stats[1].latency_p95_us, 6_000);
        assert_eq!(stats[1].served, 20);
    }

    #[test]
    fn prior_hit_rate_ranks_ties_low_index_first() {
        let space = FeatureSpace::new(SpatialLevel::Building, 4);
        let mk = |b: usize| Session {
            user: 0,
            building: b,
            ap: b,
            day: 1,
            entry_minutes: 600,
            duration_minutes: 30,
        };
        // A1 reconstructs the *middle* step, so vary that one.
        let instances: Vec<Instance> =
            (0..4).map(|b| Adversary::A1.instance(&[mk(0), mk(b), mk(3)], 3)).collect();
        // Uniform prior: top-2 under low-index tie-breaking is {0, 1}.
        let uniform = Prior::uniform(4);
        assert_eq!(prior_hit_rate(&uniform, &space, &instances, 2), 0.5);
        assert_eq!(prior_hit_rate(&uniform, &space, &instances, 4), 1.0);
        assert_eq!(prior_hit_rate(&uniform, &space, &[], 2), 0.0);
        // A history concentrated on location 3 pulls it into the top-1.
        let history: Vec<Session> = (0..6).map(|_| mk(3)).collect();
        let skewed = Prior::from_history(&space, &history);
        assert_eq!(prior_hit_rate(&skewed, &space, &instances[3..], 1), 1.0);
    }

    #[test]
    #[should_panic(expected = "not under test")]
    fn the_holdout_has_no_accumulator() {
        engine(0.1).observe_completion(Arm::Holdout, 0, 0, 0);
    }
}

//! The closed A/B loop on one virtual clock.
//!
//! [`run_abx`] stages a complete defense-rung experiment as a reactive
//! [`Workload`] composed onto the sim-driven serving tier:
//!
//! 1. **Split** — the enrolled users partition into A / B / holdout
//!    cohorts by seeded hash ([`CohortSplitter`]); the partition is
//!    asserted disjoint and exhaustive before anything trains.
//! 2. **Publish** — every user personalizes once on the trainer pool and
//!    publishes through the registry's durable-before-visible path
//!    ([`publish_arms`]): treatment users carry their own arm's rung
//!    active and the *other* arm's rung as a retained shadow version, so
//!    the eventual losing-cohort flip is a store rollback, not a retrain.
//! 3. **Attack through the front door** — a [`ServedAdversary`] per
//!    attacked user mounts the time-based inversion attack strictly
//!    through the serving interface: its query batches ride a WAN uplink
//!    job onto the event heap, get injected into the scheduler
//!    ([`ServeFlow::inject`]), wait in shard batches behind background
//!    traffic, and come back as top-k truncated served vectors stamped
//!    with real virtual-clock latency. No adversary ever holds a model.
//! 4. **Verdict** — a checkpoint timer fires on the same clock; once
//!    every attack is home the [`VerdictEngine`] compares per-arm
//!    *advantage* (attack hit rate minus each user's own prior baseline)
//!    under a latency guard and either declares the arms
//!    indistinguishable ([`Verdict::Null`] — the A/A contract) or
//!    promotes a winner.
//! 5. **Flip / promote** — on a promotion, every losing-cohort user's
//!    flip-back (a [`ShardedRegistry::rollback`] to their shadow
//!    version) and every holdout promotion rides its own WAN push job;
//!    queries keep flowing throughout. Because batches bind the registry
//!    model at seal time, a response can only carry the losing rung if
//!    its batch *dispatched* before the flip landed — the run counts
//!    those as (expected, bounded) exposure and asserts the
//!    degraded-*after*-swap count is zero, reusing the exact
//!    [`count_degraded_after_swap`] definition the rollback study uses.
//!
//! Determinism: the split is a pure hash, training is width-invariant,
//! attack query sets are answer-independent and everything else is a
//! deterministic event heap — the outcome [`fingerprint`] is
//! bit-identical for any trainer-pool width.
//!
//! [`fingerprint`]: crate::report::AbxOutcome::fingerprint

use std::collections::HashMap;
use std::ops::Range;

use pelican::platform::ComputeTier;
use pelican::DefenseKind;
use pelican_attacks::{truncate_top_k, ServedAdversary, ServedAnswer, ServedConfig, ServedQuery};
use pelican_attacks::{Prior, PriorKind};
use pelican_live::{bootstrap_jobs, live_stream, LiveConfig};
use pelican_mobility::MobilityDataset;
use pelican_nn::{ModelCodecError, ModelEnvelope, SequenceModel};
use pelican_serve::{
    job_id, serve_harness, Request, RollbackError, SchedulerConfig, ServeFlow, ServeHarness,
    ShardedRegistry, SimServeConfig, KIND_SHIFT,
};
use pelican_sim::{
    JobReport, JobSpec, LinkProfile, LinkSpec, SimControl, Simulator, Stage, TransferPolicy,
    Workload,
};
use pelican_store::StoreError;
use pelican_train::{count_degraded_after_swap, FleetTrainer, PipelineConfig, StalenessWindow};

use crate::publisher::{defended, publish_arms, ArmPublication};
use crate::report::{AbxOutcome, AttackRecord, PublicationRecord, SwapKind, SwapRecord};
use crate::splitter::{Arm, CohortSplit, CohortSplitter};
use crate::verdict::{prior_hit_rate, Verdict, VerdictConfig, VerdictEngine};

/// Job-id namespace of adversary uplink batches (the serving flow owns
/// kinds 0–2; the live loop uses 8).
const KIND_ATTACK: u64 = 9;

/// Job-id namespace of post-verdict flip / promotion pushes.
const KIND_FLIP: u64 = 10;

/// Timer key of the verdict checkpoint — distinct from the serving
/// flow's shard keys and the live loop's round key (`u64::MAX`).
const CHECKPOINT_KEY: u64 = u64::MAX - 1;

/// Everything one experiment needs beyond the dataset and the registry.
#[derive(Debug, Clone)]
pub struct AbxConfig {
    /// Trainer pool and audit red-team knobs. The served adversary
    /// derives its probes, method, prior and cutoffs from
    /// `pipeline.audit`, so the front-door attack audits with the same
    /// configuration the offline gate would.
    pub pipeline: PipelineConfig,
    /// Sim-driven serving knobs (scheduler, tier, optional network).
    pub serve: SimServeConfig,
    /// Cohort-split seed.
    pub split_seed: u64,
    /// Target fractions of `(arm A, arm B)`; the rest is the holdout.
    pub fractions: (f64, f64),
    /// The two defense rungs under test, `[A, B]`.
    pub arms: [DefenseKind; 2],
    /// Users attacked through the serving interface per arm (lowest user
    /// ids of each cohort).
    pub attacked_per_arm: usize,
    /// Served confidence vectors are truncated to this many entries —
    /// the serving tier's answer-minimization knob.
    pub response_top_k: usize,
    /// Wire size of one adversary query on its uplink.
    pub query_bytes: u64,
    /// Virtual microseconds per trace minute.
    pub us_per_minute: u64,
    /// Trace minutes consumed by enrollment; serving starts after this
    /// cutoff, at virtual time 0.
    pub bootstrap_minutes: u64,
    /// Trace minute the background stream ends at.
    pub horizon_minutes: u64,
    /// Train/holdout split of the enrollment window.
    pub train_fraction: f64,
    /// Verdict checkpoint period on the virtual clock; the checkpoint
    /// re-arms until every attack is home, then decides exactly once.
    pub checkpoint_interval_us: u64,
    /// Advantage gap below which the arms are indistinguishable.
    pub null_margin: f64,
    /// Maximum p95 latency regression the winning rung may cost.
    pub latency_margin_us: u64,
}

impl Default for AbxConfig {
    fn default() -> Self {
        Self {
            pipeline: PipelineConfig::default(),
            serve: SimServeConfig {
                scheduler: SchedulerConfig::default(),
                tier: ComputeTier::Cloud,
                network: None,
            },
            split_seed: 0xAB5_EED,
            fractions: (0.4, 0.4),
            arms: [DefenseKind::None, DefenseKind::Temperature { temperature: 1e-5 }],
            attacked_per_arm: 2,
            response_top_k: 5,
            query_bytes: 256,
            us_per_minute: 60_000_000,
            bootstrap_minutes: 7 * 24 * 60,
            horizon_minutes: 14 * 24 * 60,
            train_fraction: 0.8,
            checkpoint_interval_us: 600_000_000,
            null_margin: 0.05,
            latency_margin_us: 1_000_000,
        }
    }
}

/// Why an experiment could not complete.
#[derive(Debug)]
pub enum AbxError {
    /// A stored envelope failed to decode.
    Codec(ModelCodecError),
    /// The durable store failed an append.
    Store(StoreError),
    /// A losing-cohort flip-back failed.
    Rollback(RollbackError),
    /// The registry has no durable store attached — the experiment needs
    /// version history for the shadow flip-back.
    NoStore,
}

impl std::fmt::Display for AbxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AbxError::Codec(e) => write!(f, "envelope decode failed: {e}"),
            AbxError::Store(e) => write!(f, "durable store failed: {e}"),
            AbxError::Rollback(e) => write!(f, "flip-back failed: {e}"),
            AbxError::NoStore => write!(f, "A/B experiment requires a store-backed registry"),
        }
    }
}

impl std::error::Error for AbxError {}

impl From<ModelCodecError> for AbxError {
    fn from(e: ModelCodecError) -> Self {
        AbxError::Codec(e)
    }
}

impl From<StoreError> for AbxError {
    fn from(e: StoreError) -> Self {
        AbxError::Store(e)
    }
}

impl From<RollbackError> for AbxError {
    fn from(e: RollbackError) -> Self {
        AbxError::Rollback(e)
    }
}

/// One attacked user's front-door attack in flight.
struct AttackState {
    user_id: usize,
    arm: Arm,
    adversary: ServedAdversary,
    /// The user's prior-only hit rate at the audit cutoff.
    baseline: f64,
    done: bool,
}

/// What a flip push does when it lands.
enum FlipAction {
    /// Losing-cohort rollback to the retained shadow version.
    FlipBack { user_id: usize, slot: usize, shadow_version: u64 },
    /// Holdout adoption of the winning rung via a fresh publication.
    Promote { user_id: usize, envelope: ModelEnvelope },
}

/// The composed workload: the serving flow plus the experiment loop.
struct AbxFlow<'a> {
    serve: ServeFlow<'a>,
    registry: &'a ShardedRegistry,
    split: &'a CohortSplit,
    publications: &'a [ArmPublication],
    /// user id → index into `publications`.
    pub_index: HashMap<usize, usize>,
    arms: [DefenseKind; 2],
    attacks: Vec<AttackState>,
    engine: VerdictEngine,
    /// Client send time of every background request, by request id.
    stream_sent: Vec<u64>,
    /// Injected attack request id → (attack slot, adversary query id,
    /// uplink send time).
    rid_map: HashMap<usize, (usize, usize, u64)>,
    next_rid: usize,
    /// Outstanding uplink batches by `KIND_ATTACK` payload.
    uplinks: HashMap<u64, (usize, u64, Vec<ServedQuery>)>,
    next_uplink: u64,
    uplink_link: usize,
    push_link: usize,
    query_bytes: u64,
    response_top_k: usize,
    audit_k: usize,
    checkpoint_interval_us: u64,
    checkpoint_armed: bool,
    checkpoints: u64,
    decided: bool,
    verdict: Option<(Verdict, [crate::verdict::ArmStats; 2])>,
    verdict_us: u64,
    /// Losing-cohort user → replica slot into `swap_times`.
    losing_slot: HashMap<usize, usize>,
    /// Flip landing time per losing-cohort slot.
    swap_times: Vec<u64>,
    /// Expected post-flip model per losing-cohort user.
    expected: HashMap<usize, SequenceModel>,
    /// `(dispatched_us, slot, served-the-losing-rung)` per losing-cohort
    /// response after the verdict — the shared staleness log shape.
    flip_log: Vec<(u64, usize, bool)>,
    /// Outstanding flip pushes by `KIND_FLIP` payload.
    flips: HashMap<u64, FlipAction>,
    next_flip: u64,
    attack_records: Vec<AttackRecord>,
    swaps: Vec<SwapRecord>,
    error: Option<AbxError>,
}

impl AbxFlow<'_> {
    /// Keeps exactly one checkpoint timer armed until the decision.
    fn ensure_checkpoint(&mut self, sim: &mut SimControl) {
        if !self.checkpoint_armed && !self.decided {
            sim.set_timer(sim.now() + self.checkpoint_interval_us, CHECKPOINT_KEY);
            self.checkpoint_armed = true;
        }
    }

    fn sent_of(&self, request_id: usize) -> u64 {
        if request_id < self.stream_sent.len() {
            self.stream_sent[request_id]
        } else {
            self.rid_map[&request_id].2
        }
    }

    /// Drains an adversary's next batch onto its uplink, or records its
    /// finished evaluation.
    fn pump_attack(&mut self, slot: usize, sim: &mut SimControl) {
        if self.attacks[slot].done {
            return;
        }
        let batch = self.attacks[slot].adversary.next_queries();
        if !batch.is_empty() {
            let seq = self.next_uplink;
            self.next_uplink += 1;
            let now = sim.now();
            sim.submit(JobSpec {
                id: job_id(KIND_ATTACK, seq),
                release_us: now,
                stages: vec![Stage::Transfer {
                    label: "abx-uplink",
                    link: self.uplink_link,
                    bytes: self.query_bytes * batch.len() as u64,
                    policy: TransferPolicy::default(),
                }],
            });
            self.uplinks.insert(seq, (slot, now, batch));
            return;
        }
        if self.attacks[slot].adversary.is_done() {
            let state = &mut self.attacks[slot];
            state.done = true;
            let eval = state.adversary.evaluation();
            let accuracy = eval.accuracy(self.audit_k);
            let wire = state.adversary.queries_sent() as u64;
            self.engine.record_attack(state.arm, accuracy, state.baseline, wire);
            self.attack_records.push(AttackRecord {
                user_id: state.user_id,
                arm: state.arm,
                accuracy,
                baseline: state.baseline,
                wire_queries: wire,
                logical_queries: eval.queries,
                done_us: sim.now(),
            });
        }
    }

    /// An uplink batch reached the front door: inject every query into
    /// the scheduler at the current virtual instant.
    fn uplink_arrived(&mut self, seq: u64, sim: &mut SimControl) {
        let (slot, sent_us, batch) =
            self.uplinks.remove(&seq).expect("one end per submitted uplink");
        let user_id = self.attacks[slot].user_id;
        for q in batch {
            let rid = self.next_rid;
            self.next_rid += 1;
            self.rid_map.insert(rid, (slot, q.id, sent_us));
            self.serve.inject(Request { id: rid, user_id, arrival_us: sent_us, xs: q.xs }, sim);
        }
    }

    /// A batch's compute finished (queue split back-filled): feed the
    /// verdict accumulators, route served answers to their adversaries,
    /// and — after the verdict — keep the losing cohort's staleness log.
    fn scan_batch(&mut self, index: usize, sim: &mut SimControl) {
        let batch = self.serve.batches()[index].clone();
        let completions = self.serve.completions()[index].clone();
        let mut touched: Vec<usize> = Vec::new();
        for c in &completions {
            let finish = c.finish_us();
            if let Some(arm @ (Arm::A | Arm::B)) = self.split.arm_of(c.user_id) {
                self.engine.observe_completion(
                    arm,
                    c.queue_us,
                    c.service_us,
                    finish.saturating_sub(self.sent_of(c.request_id)),
                );
            }
            if let Some(&(slot, query_id, sent_us)) = self.rid_map.get(&c.request_id) {
                self.attacks[slot].adversary.absorb(ServedAnswer {
                    id: query_id,
                    probs: truncate_top_k(&c.probs, self.response_top_k),
                    latency_us: finish.saturating_sub(sent_us),
                });
                touched.push(slot);
            }
            if let Some(&slot) = self.losing_slot.get(&c.user_id) {
                // The batch bound its models at seal time, so the probs
                // are stale exactly when the batch dispatched before the
                // flip landed — logged under the shared
                // `count_degraded_after_swap` definition.
                let expected = &self.expected[&c.user_id];
                let xs = &batch
                    .requests
                    .iter()
                    .find(|r| r.id == c.request_id)
                    .expect("completions come from their own batch")
                    .xs;
                let degraded = expected.predict_proba(xs) != c.probs;
                self.flip_log.push((batch.dispatched_us, slot, degraded));
            }
        }
        touched.sort_unstable();
        touched.dedup();
        for slot in touched {
            self.pump_attack(slot, sim);
        }
    }

    /// The checkpoint fired: decide once every attack is home, else
    /// re-arm.
    fn checkpoint(&mut self, sim: &mut SimControl) {
        self.checkpoint_armed = false;
        self.checkpoints += 1;
        if self.decided || self.error.is_some() {
            return;
        }
        if self.attacks.iter().all(|a| a.done) {
            self.decide(sim);
        } else {
            self.ensure_checkpoint(sim);
        }
    }

    /// Freezes the verdict and — on a promotion — launches one flip /
    /// promotion push per affected user while queries keep flowing.
    fn decide(&mut self, sim: &mut SimControl) {
        let now = sim.now();
        let (verdict, stats) = self.engine.decide();
        self.decided = true;
        self.verdict_us = now;
        if let Some(winner) = verdict.winner() {
            let rung = self.arms[winner.index()];
            for &user_id in self.split.arm(winner.other()) {
                let p = &self.publications[self.pub_index[&user_id]];
                let slot = self.swap_times.len();
                self.losing_slot.insert(user_id, slot);
                self.swap_times.push(0);
                self.expected.insert(user_id, defended(&p.base, rung));
                self.push_flip(
                    FlipAction::FlipBack {
                        user_id,
                        slot,
                        shadow_version: p
                            .shadow_version
                            .expect("treatment users carry a shadow version"),
                    },
                    p.envelope_bytes,
                    now,
                    sim,
                );
            }
            for &user_id in &self.split.holdout {
                let p = &self.publications[self.pub_index[&user_id]];
                let envelope = ModelEnvelope::encode(&defended(&p.base, rung));
                let bytes = envelope.len() as u64;
                self.push_flip(FlipAction::Promote { user_id, envelope }, bytes, now, sim);
            }
        }
        self.verdict = Some((verdict, stats));
    }

    fn push_flip(&mut self, action: FlipAction, bytes: u64, now: u64, sim: &mut SimControl) {
        let seq = self.next_flip;
        self.next_flip += 1;
        sim.submit(JobSpec {
            id: job_id(KIND_FLIP, seq),
            release_us: now,
            stages: vec![Stage::Transfer {
                label: "flip-push",
                link: self.push_link,
                bytes,
                policy: TransferPolicy::default(),
            }],
        });
        self.flips.insert(seq, action);
    }

    /// A flip push landed: execute the swap through the registry's
    /// durable path and stamp the landing time.
    fn flip_landed(&mut self, seq: u64, landed_us: u64) {
        let action = self.flips.remove(&seq).expect("one end per submitted flip push");
        if self.error.is_some() {
            return;
        }
        match action {
            FlipAction::FlipBack { user_id, slot, shadow_version } => {
                match self.registry.rollback(user_id, shadow_version) {
                    Ok(version) => {
                        self.swap_times[slot] = landed_us;
                        self.swaps.push(SwapRecord {
                            user_id,
                            kind: SwapKind::FlipBack,
                            landed_us,
                            version,
                        });
                    }
                    Err(e) => self.error = Some(e.into()),
                }
            }
            FlipAction::Promote { user_id, envelope } => {
                match self.registry.try_enroll_envelope(user_id, envelope) {
                    Ok(version) => self.swaps.push(SwapRecord {
                        user_id,
                        kind: SwapKind::Promotion,
                        landed_us,
                        version,
                    }),
                    Err(e) => self.error = Some(e.into()),
                }
            }
        }
    }
}

impl Workload for AbxFlow<'_> {
    fn on_job_end(&mut self, job: &JobReport, sim: &mut SimControl) {
        self.ensure_checkpoint(sim);
        if ServeFlow::handles(job.id) {
            let kind = job.id >> KIND_SHIFT;
            let payload = (job.id & ((1 << KIND_SHIFT) - 1)) as usize;
            self.serve.on_job_end(job, sim);
            // KIND_BATCH = 1: the queue/service split of batch `payload`
            // is final once the inner flow processed the job end.
            if kind == 1 && self.error.is_none() {
                self.scan_batch(payload, sim);
            }
        } else {
            let payload = job.id & ((1 << KIND_SHIFT) - 1);
            match job.id >> KIND_SHIFT {
                KIND_ATTACK => self.uplink_arrived(payload, sim),
                KIND_FLIP => self.flip_landed(payload, job.end_us),
                kind => debug_assert!(false, "unexpected job kind {kind}"),
            }
        }
    }

    fn on_timer(&mut self, key: u64, sim: &mut SimControl) {
        if key == CHECKPOINT_KEY {
            self.checkpoint(sim);
        } else {
            self.serve.on_timer(key, sim);
        }
    }
}

/// Runs one closed-loop A/B experiment: split, per-arm publication,
/// background serving with front-door attacks, checkpoint verdict, and
/// the promote / flip-back rollout. See the module docs for the phases;
/// see [`AbxOutcome`] for what comes back.
///
/// # Errors
///
/// [`AbxError::NoStore`] when the registry has no durable store;
/// otherwise codec / store / rollback failures surfaced from the loop.
///
/// # Panics
///
/// Panics on invalid configuration (fractions outside `[0, 1]`, zero
/// `max_batch`, a gradient-descent audit method — the served interface
/// exposes no gradients) and if the cohort split fails its disjointness
/// check.
pub fn run_abx(
    dataset: &MobilityDataset,
    users: Range<usize>,
    registry: &ShardedRegistry,
    general: &SequenceModel,
    config: &AbxConfig,
) -> Result<AbxOutcome, AbxError> {
    if registry.store().is_none() {
        return Err(AbxError::NoStore);
    }
    let space = &dataset.space;
    let live_config = LiveConfig {
        pipeline: config.pipeline.clone(),
        serve: config.serve,
        us_per_minute: config.us_per_minute,
        bootstrap_minutes: config.bootstrap_minutes,
        horizon_minutes: config.horizon_minutes,
        train_fraction: config.train_fraction,
        ..LiveConfig::default()
    };

    // Phase 1: split the enrollable users and hard-check the partition —
    // a broken split silently corrupts every downstream number.
    let jobs = bootstrap_jobs(dataset, users.clone(), &live_config);
    let enrolled: Vec<usize> = jobs.iter().map(|j| j.user_id).collect();
    let splitter = CohortSplitter::new(config.split_seed, config.fractions.0, config.fractions.1);
    let split = splitter.split(enrolled.iter().copied());
    split.assert_partitions(enrolled.iter().copied());

    // Phase 2: train once, publish shadow-then-active per cohort, and
    // label the registry's per-cohort traffic counters.
    let trainer = FleetTrainer::new(config.pipeline.clone());
    let publications = publish_arms(&trainer, general, &jobs, &split, config.arms, registry)?;
    for p in &publications {
        registry.set_cohort(p.user_id, p.arm.index());
    }
    let pub_index: HashMap<usize, usize> =
        publications.iter().enumerate().map(|(i, p)| (p.user_id, i)).collect();

    // Phase 3: front-door adversaries over the lowest user ids of each
    // treatment cohort, red-teamed with the audit gate's configuration.
    let audit = &config.pipeline.audit;
    let mut attacks: Vec<AttackState> = Vec::new();
    for arm in [Arm::A, Arm::B] {
        for &user_id in split.arm(arm).iter().take(config.attacked_per_arm) {
            let subject = &jobs[enrolled
                .binary_search(&user_id)
                .unwrap_or_else(|_| panic!("attacked user {user_id} is enrolled"))]
            .subject;
            let instances: Vec<_> = subject
                .holdout
                .iter()
                .take(audit.max_instances)
                .map(|t| audit.adversary.instance(t, space.location_of(&t[2])))
                .collect();
            let prior = match audit.prior {
                PriorKind::None => Prior::uniform(space.n_locations),
                _ => Prior::from_history(space, &subject.history),
            };
            let baseline = prior_hit_rate(&prior, space, &instances, audit.audit_k);
            attacks.push(AttackState {
                user_id,
                arm,
                adversary: ServedAdversary::new(
                    *space,
                    prior,
                    instances,
                    audit.method.clone(),
                    ServedConfig {
                        probe_count: audit.probe_count,
                        probe_seed: audit.seed ^ 0x1f,
                        interest_threshold: audit.interest_threshold,
                        ks: audit.ks.clone(),
                    },
                ),
                baseline,
                done: false,
            });
        }
    }

    // Phase 4: the background stream through the serving harness, plus
    // one fair WAN uplink for adversary queries and one FIFO WAN push
    // lane for post-verdict flips.
    let stream = live_stream(dataset, users, &live_config);
    let ServeHarness { mut links, jobs: mut sim_jobs, flow: serve } =
        serve_harness(registry, &stream.requests, &config.serve);
    let uplink_link = links.len();
    links.push(LinkSpec::fair(LinkProfile::wan()));
    let push_link = links.len();
    links.push(LinkSpec::fifo(LinkProfile::wan()));

    let mut flow = AbxFlow {
        serve,
        registry,
        split: &split,
        publications: &publications,
        pub_index,
        arms: config.arms,
        attacks,
        engine: VerdictEngine::new(
            VerdictConfig {
                audit_k: audit.audit_k,
                null_margin: config.null_margin,
                latency_margin_us: config.latency_margin_us,
            },
            [split.a.len(), split.b.len()],
        ),
        stream_sent: stream.requests.iter().map(|r| r.arrival_us).collect(),
        rid_map: HashMap::new(),
        next_rid: stream.requests.len(),
        uplinks: HashMap::new(),
        next_uplink: 0,
        uplink_link,
        push_link,
        query_bytes: config.query_bytes,
        response_top_k: config.response_top_k,
        audit_k: audit.audit_k,
        checkpoint_interval_us: config.checkpoint_interval_us,
        checkpoint_armed: false,
        checkpoints: 0,
        decided: false,
        verdict: None,
        verdict_us: 0,
        losing_slot: HashMap::new(),
        swap_times: Vec::new(),
        expected: HashMap::new(),
        flip_log: Vec::new(),
        flips: HashMap::new(),
        next_flip: 0,
        attack_records: Vec::new(),
        swaps: Vec::new(),
        error: None,
    };

    // Each adversary's opening probe batch rides an uplink job released
    // at time zero, alongside the background arrivals.
    for slot in 0..flow.attacks.len() {
        let batch = flow.attacks[slot].adversary.next_queries();
        if batch.is_empty() {
            continue;
        }
        let seq = flow.next_uplink;
        flow.next_uplink += 1;
        sim_jobs.push(JobSpec {
            id: job_id(KIND_ATTACK, seq),
            release_us: 0,
            stages: vec![Stage::Transfer {
                label: "abx-uplink",
                link: uplink_link,
                bytes: config.query_bytes * batch.len() as u64,
                policy: TransferPolicy::default(),
            }],
        });
        flow.uplinks.insert(seq, (slot, 0, batch));
    }

    let sim = Simulator::builder().links(links).build().run(&sim_jobs, &mut flow);
    if let Some(e) = flow.error {
        return Err(e);
    }
    assert!(
        flow.attacks.iter().all(|a| a.done),
        "every front-door attack drains before the event heap does"
    );
    // A heap with no events at all (empty stream, zero attacks) never
    // fires the checkpoint; decide on the drained clock instead.
    if !flow.decided {
        flow.verdict = Some(flow.engine.decide());
    }
    let (verdict, arm_stats) = flow.verdict.expect("decided above");
    let serve_outcome = flow.serve.into_outcome(sim)?;

    let flip_window = (!flow.swap_times.is_empty())
        .then(|| StalenessWindow::measure(flow.verdict_us, &flow.swap_times));
    let exposed_responses = flow.flip_log.iter().filter(|(_, _, degraded)| *degraded).count();
    let degraded_after_swap = count_degraded_after_swap(&flow.flip_log, &flow.swap_times);
    let stats = registry.stats();

    Ok(AbxOutcome {
        split: split.clone(),
        publications: publications
            .iter()
            .map(|p| PublicationRecord {
                user_id: p.user_id,
                arm: p.arm,
                active_hash: p.active_hash,
                shadow_hash: p.shadow_hash,
                active_version: p.active_version,
                shadow_version: p.shadow_version,
                train_simulated_us: p.train_simulated_us,
            })
            .collect(),
        attacks: flow.attack_records,
        verdict,
        arms: arm_stats,
        verdict_us: flow.verdict_us,
        checkpoints: flow.checkpoints,
        swaps: flow.swaps,
        flip_window,
        exposed_responses,
        degraded_after_swap,
        cohort_queries: stats.cohort_queries,
        cohort_hits: stats.cohort_hits,
        serve: serve_outcome,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pelican::PersonalizationConfig;
    use pelican_mobility::{CampusConfig, DatasetBuilder, Scale, SpatialLevel};
    use pelican_nn::TrainConfig;
    use pelican_serve::RegistryConfig;
    use pelican_store::{EnvelopeStore, MemBackend, StoreConfig};
    use pelican_train::AuditConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn setting() -> (MobilityDataset, SequenceModel) {
        let dataset = DatasetBuilder::new(CampusConfig::for_scale(Scale::Tiny), 21)
            .build(SpatialLevel::Building);
        let mut rng = StdRng::seed_from_u64(21);
        let general = SequenceModel::general_lstm(
            dataset.space.dim(),
            12,
            dataset.n_locations(),
            0.1,
            &mut rng,
        );
        (dataset, general)
    }

    fn registry(general: &SequenceModel) -> ShardedRegistry {
        let store = EnvelopeStore::open(
            Arc::new(MemBackend::new()),
            StoreConfig { shards: 2, ..StoreConfig::default() },
        )
        .unwrap();
        ShardedRegistry::with_store(
            general.clone(),
            RegistryConfig { shards: 2, ..RegistryConfig::default() },
            Arc::new(store),
        )
    }

    fn config(workers: usize) -> AbxConfig {
        AbxConfig {
            pipeline: PipelineConfig {
                workers,
                personalization: PersonalizationConfig {
                    train: TrainConfig { epochs: 1, ..TrainConfig::default() },
                    hidden_dim: 12,
                    ..PersonalizationConfig::default()
                },
                audit: AuditConfig { max_instances: 4, probe_count: 8, ..AuditConfig::default() },
                ..PipelineConfig::default()
            },
            serve: SimServeConfig {
                scheduler: SchedulerConfig { max_batch: 4, max_delay_us: 900 },
                tier: ComputeTier::Cloud,
                network: None,
            },
            fractions: (0.34, 0.33),
            attacked_per_arm: 4,
            us_per_minute: 1_000,
            horizon_minutes: 9 * 24 * 60,
            checkpoint_interval_us: 50_000_000,
            // Calibrated to separate tiny-scale cohort-composition noise
            // (A/A |Δ| ≈ 0.19 here) from the real None-vs-temperature
            // effect (|Δ| ≈ 0.31).
            null_margin: 0.25,
            ..AbxConfig::default()
        }
    }

    #[test]
    fn the_experiment_is_deterministic_and_never_serves_stale_after_a_flip() {
        let (dataset, general) = setting();
        let n = dataset.users.len();
        let run = |workers| {
            let registry = registry(&general);
            run_abx(&dataset, 0..n, &registry, &general, &config(workers)).unwrap()
        };
        let narrow = run(1);
        let wide = run(2);

        assert_eq!(
            narrow.fingerprint(),
            wide.fingerprint(),
            "pool width must not leak into the experiment"
        );
        narrow.split.assert_partitions(narrow.publications.iter().map(|p| p.user_id));
        assert_eq!(narrow.attacks.len(), 8, "four front-door attacks per arm");
        assert!(narrow.attacks.iter().all(|a| a.wire_queries > 0));
        assert_eq!(narrow.degraded_after_swap, 0, "no stale answer after a landed flip");
        match narrow.verdict.winner() {
            Some(winner) => {
                let loser_cohort = narrow.split.arm(winner.other()).len();
                assert_eq!(narrow.flip_backs(), loser_cohort);
                assert_eq!(narrow.promotions(), narrow.split.holdout.len());
                let window = narrow.flip_window.expect("promotions measure a window");
                assert!(window.detected_at_us == narrow.verdict_us);
            }
            None => {
                assert!(narrow.swaps.is_empty(), "a null verdict moves nobody");
                assert!(narrow.flip_window.is_none());
            }
        }
        // Cohort counters saw both treatment arms' traffic.
        assert!(narrow.cohort_queries.len() >= 2);
        assert!(narrow.cohort_queries[0] > 0 && narrow.cohort_queries[1] > 0);
        let render = narrow.render();
        assert!(render.contains("verdict"), "render mentions the verdict: {render}");
    }

    #[test]
    fn an_aa_run_reads_null_and_moves_nobody() {
        let (dataset, general) = setting();
        let n = dataset.users.len();
        let mut cfg = config(2);
        cfg.arms = [
            DefenseKind::Temperature { temperature: 1e-3 },
            DefenseKind::Temperature { temperature: 1e-3 },
        ];
        let registry = registry(&general);
        let outcome = run_abx(&dataset, 0..n, &registry, &general, &cfg).unwrap();
        assert!(
            outcome.verdict.is_null(),
            "identical rungs must be indistinguishable: {}",
            outcome.verdict
        );
        assert!(outcome.swaps.is_empty());
        assert_eq!(outcome.exposed_responses, 0);
        // Identical rungs ⇒ each user's active and shadow envelopes are
        // byte-identical.
        for p in &outcome.publications {
            if let Some(shadow) = p.shadow_hash {
                assert_eq!(shadow, p.active_hash);
            }
        }
    }

    #[test]
    fn a_storeless_registry_is_rejected() {
        let (dataset, general) = setting();
        let registry = ShardedRegistry::new(general.clone(), RegistryConfig::default());
        match run_abx(&dataset, 0..3, &registry, &general, &AbxConfig::default()) {
            Err(AbxError::NoStore) => {}
            other => panic!("expected NoStore, got {other:?}"),
        }
    }
}

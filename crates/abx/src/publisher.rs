//! Per-arm training and durable publication.
//!
//! [`publish_arms`] personalizes every enrolled user once on the
//! work-stealing [`TrainerPool`] (bit-identical for any width — per-user
//! seeds, job-order collection, device-tier cost measured per thread) and
//! publishes each user's envelopes through the registry's
//! durable-before-visible path:
//!
//! * a **treatment** user gets *two* publications from the same base
//!   weights — first the **shadow** (the *other* arm's rung), then the
//!   **active** (their own arm's rung). The store's version history
//!   retains both, which is the whole trick: if this user's arm loses the
//!   experiment, flipping them to the winning rung is a
//!   [`ShardedRegistry::rollback`] to the shadow version — durable,
//!   atomic, zero retraining;
//! * a **holdout** user gets one base-defense publication and is not
//!   touched again until a winner is promoted fleet-wide.
//!
//! The undefended base weights ride along in each [`ArmPublication`] so
//! the flow can later derive the *expected* post-flip model (base +
//! winning rung) and check served responses against it exactly.

use pelican::platform::{measure_thread, ComputeTier};
use pelican::DefenseKind;
use pelican_nn::{ModelEnvelope, SequenceModel};
use pelican_serve::ShardedRegistry;
use pelican_store::StoreError;
use pelican_train::{FleetTrainer, TrainJob, TrainerPool};

use crate::report::fnv64;
use crate::splitter::{Arm, CohortSplit};

/// One user's experiment publication state.
#[derive(Debug, Clone)]
pub struct ArmPublication {
    /// The enrolled user.
    pub user_id: usize,
    /// The user's cohort.
    pub arm: Arm,
    /// The undefended personalized weights both rungs derive from.
    pub base: SequenceModel,
    /// Version serving traffic (own rung; base defense for the holdout).
    pub active_version: u64,
    /// Retained flip-back target (the other arm's rung); `None` for the
    /// holdout.
    pub shadow_version: Option<u64>,
    /// FNV-1a hash of the active envelope bytes.
    pub active_hash: u64,
    /// FNV-1a hash of the shadow envelope bytes.
    pub shadow_hash: Option<u64>,
    /// Active envelope size — the bytes a flip push pays on the wire.
    pub envelope_bytes: u64,
    /// Simulated device cost of the personalization, µs.
    pub train_simulated_us: u64,
}

/// Applies a defense rung to a copy of the base weights.
pub fn defended(base: &SequenceModel, rung: DefenseKind) -> SequenceModel {
    let mut model = base.clone();
    rung.apply(&mut model);
    model
}

/// Trains every job on the pool and publishes per-cohort envelopes; see
/// the module docs for the shadow/active scheme. Jobs are processed in
/// input order, so versions — the only schedule-sensitive output of a
/// registry publication — are deterministic here too.
///
/// # Errors
///
/// Returns [`StoreError`] if a durable append fails; publications up to
/// that point remain (durably) visible.
///
/// # Panics
///
/// Panics if a job's user is outside `split` — the cohort partition must
/// cover every trained user.
pub fn publish_arms(
    trainer: &FleetTrainer,
    general: &SequenceModel,
    jobs: &[TrainJob],
    split: &CohortSplit,
    arms: [DefenseKind; 2],
    registry: &ShardedRegistry,
) -> Result<Vec<ArmPublication>, StoreError> {
    let general_envelope = ModelEnvelope::encode(general);
    let pool = TrainerPool::new(trainer.config().workers);
    let candidates: Vec<(SequenceModel, u64)> = pool.run(jobs, |_, job| {
        let ((model, _fit), usage) =
            measure_thread(ComputeTier::Device, || trainer.train_candidate(&general_envelope, job));
        (model, usage.simulated.as_micros() as u64)
    });

    let base_defense = trainer.config().audit.base_defense;
    let mut publications = Vec::with_capacity(jobs.len());
    for (job, (base, train_simulated_us)) in jobs.iter().zip(candidates) {
        let arm = split
            .arm_of(job.user_id)
            .unwrap_or_else(|| panic!("user {} trained but not in the split", job.user_id));
        let own_rung = match arm {
            Arm::A => arms[0],
            Arm::B => arms[1],
            Arm::Holdout => base_defense,
        };
        // Shadow first: by the time the active version is visible, the
        // flip-back target is already durable.
        let (shadow_version, shadow_hash) = match arm {
            Arm::A | Arm::B => {
                let other = match arm.other() {
                    Arm::A => arms[0],
                    Arm::B => arms[1],
                    Arm::Holdout => unreachable!("other() never yields the holdout"),
                };
                let envelope = ModelEnvelope::encode(&defended(&base, other));
                let hash = fnv64(envelope.as_bytes());
                (Some(registry.try_enroll_envelope(job.user_id, envelope)?), Some(hash))
            }
            Arm::Holdout => (None, None),
        };
        let active = ModelEnvelope::encode(&defended(&base, own_rung));
        let active_hash = fnv64(active.as_bytes());
        let envelope_bytes = active.len() as u64;
        let active_version = registry.try_enroll_envelope(job.user_id, active)?;
        publications.push(ArmPublication {
            user_id: job.user_id,
            arm,
            base,
            active_version,
            shadow_version,
            active_hash,
            shadow_hash,
            envelope_bytes,
            train_simulated_us,
        });
    }
    Ok(publications)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::splitter::CohortSplitter;
    use pelican::PersonalizationConfig;
    use pelican_mobility::{CampusConfig, DatasetBuilder, Scale, SpatialLevel};
    use pelican_nn::TrainConfig;
    use pelican_serve::RegistryConfig;
    use pelican_store::{EnvelopeStore, MemBackend, StoreConfig};
    use pelican_train::{cohort_jobs, AuditConfig, PipelineConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn setting() -> (SequenceModel, pelican_mobility::MobilityDataset, Vec<TrainJob>) {
        let dataset = DatasetBuilder::new(CampusConfig::for_scale(Scale::Tiny), 11)
            .build(SpatialLevel::Building);
        let mut rng = StdRng::seed_from_u64(11);
        let general = SequenceModel::general_lstm(
            dataset.space.dim(),
            12,
            dataset.n_locations(),
            0.1,
            &mut rng,
        );
        let n = dataset.users.len();
        let jobs = cohort_jobs(&dataset, (n - 3)..n, 0.8);
        (general, dataset, jobs)
    }

    fn config(workers: usize) -> PipelineConfig {
        PipelineConfig {
            workers,
            personalization: PersonalizationConfig {
                train: TrainConfig { epochs: 1, ..TrainConfig::default() },
                hidden_dim: 12,
                ..PersonalizationConfig::default()
            },
            audit: AuditConfig { max_instances: 2, ..AuditConfig::default() },
            ..PipelineConfig::default()
        }
    }

    fn registry(general: &SequenceModel) -> ShardedRegistry {
        let store = EnvelopeStore::open(
            Arc::new(MemBackend::new()),
            StoreConfig { shards: 2, ..StoreConfig::default() },
        )
        .unwrap();
        ShardedRegistry::with_store(
            general.clone(),
            RegistryConfig { shards: 2, ..RegistryConfig::default() },
            Arc::new(store),
        )
    }

    const ARMS: [DefenseKind; 2] =
        [DefenseKind::None, DefenseKind::Temperature { temperature: 1e-5 }];

    #[test]
    fn treatment_users_get_a_durable_shadow_and_holdouts_do_not() {
        let (general, _dataset, jobs) = setting();
        let users: Vec<usize> = jobs.iter().map(|j| j.user_id).collect();
        // A seed whose tiny split puts at least one user in each class is
        // not guaranteed; force the partition instead.
        let split = CohortSplit { a: vec![users[0]], b: vec![users[1]], holdout: vec![users[2]] };
        let registry = registry(&general);
        let trainer = FleetTrainer::new(config(2));
        let pubs = publish_arms(&trainer, &general, &jobs, &split, ARMS, &registry).unwrap();
        assert_eq!(pubs.len(), 3);
        for p in &pubs {
            assert_eq!(registry.version_of(p.user_id), Some(p.active_version));
            match p.arm {
                Arm::A | Arm::B => {
                    let shadow = p.shadow_version.expect("treatment users carry a shadow");
                    assert!(shadow < p.active_version, "shadow is durable before active");
                    assert_ne!(p.shadow_hash.unwrap(), p.active_hash, "rungs differ on the wire");
                    // The flip is free: rollback to the shadow re-serves
                    // the other arm's rung with no retraining.
                    registry.rollback(p.user_id, shadow).expect("shadow version is retained");
                }
                Arm::Holdout => {
                    assert!(p.shadow_version.is_none() && p.shadow_hash.is_none());
                }
            }
            assert!(p.envelope_bytes > 0);
            assert!(p.train_simulated_us > 0);
        }
    }

    #[test]
    fn publication_is_width_invariant() {
        let (general, _dataset, jobs) = setting();
        let split = CohortSplitter::new(0xAB, 0.34, 0.33).split(jobs.iter().map(|j| j.user_id));
        let run = |workers| {
            let registry = registry(&general);
            let trainer = FleetTrainer::new(config(workers));
            publish_arms(&trainer, &general, &jobs, &split, ARMS, &registry).unwrap()
        };
        let narrow = run(1);
        let wide = run(4);
        for (a, b) in narrow.iter().zip(&wide) {
            assert_eq!(a.user_id, b.user_id);
            assert_eq!(a.active_hash, b.active_hash, "user {} weights drifted", a.user_id);
            assert_eq!(a.shadow_hash, b.shadow_hash);
            assert_eq!(a.active_version, b.active_version, "publication order is job order");
            assert_eq!(a.train_simulated_us, b.train_simulated_us);
        }
    }
}

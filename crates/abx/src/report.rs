//! The experiment record: what ran, what was decided, what moved, and a
//! determinism fingerprint over all of it.

use pelican_serve::SimServeOutcome;
use pelican_train::StalenessWindow;

use crate::splitter::{Arm, CohortSplit};
use crate::verdict::{ArmStats, Verdict};

const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice — the same cheap stable hash the live loop's
/// report uses for envelope identity.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = FNV_BASIS;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn fold(h: &mut u64, value: u64) {
    for b in value.to_le_bytes() {
        *h ^= b as u64;
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

/// One user's publication, reduced to what reports and fingerprints
/// need. Version numbers are deliberately absent from the fingerprint —
/// they are registry bookkeeping, not experiment content.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublicationRecord {
    /// The enrolled user.
    pub user_id: usize,
    /// The user's cohort.
    pub arm: Arm,
    /// Hash of the envelope serving traffic.
    pub active_hash: u64,
    /// Hash of the retained flip-back envelope (treatment arms only).
    pub shadow_hash: Option<u64>,
    /// Active publication version.
    pub active_version: u64,
    /// Shadow publication version (treatment arms only).
    pub shadow_version: Option<u64>,
    /// Simulated device cost of the personalization, µs.
    pub train_simulated_us: u64,
}

/// One finished served-interface attack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackRecord {
    /// The attacked user.
    pub user_id: usize,
    /// The user's (treatment) arm.
    pub arm: Arm,
    /// Hit rate at the audit cutoff, from served answers alone.
    pub accuracy: f64,
    /// The user's prior-only baseline at the same cutoff.
    pub baseline: f64,
    /// Deduplicated queries that crossed the serving interface.
    pub wire_queries: u64,
    /// Logical oracle queries the attack scored with.
    pub logical_queries: u64,
    /// Virtual instant the last served answer arrived.
    pub done_us: u64,
}

/// Why a registry publication happened after the verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapKind {
    /// A losing-cohort user rolled back to their shadow version — the
    /// winning rung, retained since enrollment.
    FlipBack,
    /// A holdout user adopted the winning rung via a fresh publication.
    Promotion,
}

/// One post-verdict registry swap, as it landed on the virtual clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapRecord {
    /// The swapped user.
    pub user_id: usize,
    /// Flip-back or promotion.
    pub kind: SwapKind,
    /// When the push landed and the swap became visible, µs.
    pub landed_us: u64,
    /// The new publication version (excluded from the fingerprint).
    pub version: u64,
}

/// A finished A/B experiment.
#[derive(Debug, Clone)]
pub struct AbxOutcome {
    /// The cohort partition the experiment ran on.
    pub split: CohortSplit,
    /// Per-user publication state, ascending by user.
    pub publications: Vec<PublicationRecord>,
    /// Finished attacks, in completion order.
    pub attacks: Vec<AttackRecord>,
    /// The checkpoint decision.
    pub verdict: Verdict,
    /// Frozen per-arm evidence (`[A, B]`) behind the verdict.
    pub arms: [ArmStats; 2],
    /// Virtual instant of the decision.
    pub verdict_us: u64,
    /// Checkpoint timer firings (the last one decided).
    pub checkpoints: u64,
    /// Post-verdict swaps in landing order (empty on a null verdict).
    pub swaps: Vec<SwapRecord>,
    /// Detection→last-flip window of the losing cohort (measured with
    /// the shared [`pelican_train::StalenessWindow`]); `None` on a null
    /// verdict.
    pub flip_window: Option<StalenessWindow>,
    /// Losing-cohort responses served from the losing rung between the
    /// verdict and that user's flip landing — the (expected, bounded)
    /// exposure.
    pub exposed_responses: usize,
    /// Losing-cohort responses bound to the losing rung *after* the flip
    /// landed. The durable hot-swap contract makes this zero; the
    /// `ab-report` experiment asserts it.
    pub degraded_after_swap: usize,
    /// Per-cohort query counters from the registry (`[A, B, holdout]`
    /// order by label).
    pub cohort_queries: Vec<u64>,
    /// Per-cohort hot-hit counters from the registry.
    pub cohort_hits: Vec<u64>,
    /// The underlying serving pass (batches, completions, sim trace).
    pub serve: SimServeOutcome,
}

impl AbxOutcome {
    /// Determinism fingerprint: the sim trace, the split, every envelope
    /// hash, every attack result, the verdict and every swap instant —
    /// everything the experiment *decided*, nothing the registry merely
    /// *numbered* (publication versions are schedule bookkeeping and are
    /// excluded, like the live loop's fingerprint).
    pub fn fingerprint(&self) -> u64 {
        let mut h = self.serve.fingerprint();
        for p in &self.publications {
            fold(&mut h, p.user_id as u64);
            fold(&mut h, p.arm.index() as u64);
            fold(&mut h, p.active_hash);
            fold(&mut h, p.shadow_hash.unwrap_or(0));
            fold(&mut h, p.train_simulated_us);
        }
        for a in &self.attacks {
            fold(&mut h, a.user_id as u64);
            fold(&mut h, a.arm.index() as u64);
            fold(&mut h, a.accuracy.to_bits());
            fold(&mut h, a.baseline.to_bits());
            fold(&mut h, a.wire_queries);
            fold(&mut h, a.logical_queries);
            fold(&mut h, a.done_us);
        }
        fold(
            &mut h,
            match self.verdict.winner() {
                None => 0,
                Some(arm) => 1 + arm.index() as u64,
            },
        );
        fold(&mut h, self.verdict.delta().to_bits());
        fold(&mut h, self.verdict_us);
        for s in &self.swaps {
            fold(&mut h, s.user_id as u64);
            fold(&mut h, matches!(s.kind, SwapKind::Promotion) as u64);
            fold(&mut h, s.landed_us);
        }
        fold(&mut h, self.exposed_responses as u64);
        fold(&mut h, self.degraded_after_swap as u64);
        h
    }

    /// Flip-back swaps only (the losing cohort's rollbacks).
    pub fn flip_backs(&self) -> usize {
        self.swaps.iter().filter(|s| s.kind == SwapKind::FlipBack).count()
    }

    /// Promotion swaps only (the holdout's adoptions).
    pub fn promotions(&self) -> usize {
        self.swaps.iter().filter(|s| s.kind == SwapKind::Promotion).count()
    }

    /// Multi-line human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "cohorts    A {} | B {} | holdout {} (enrolled {})\n",
            self.split.a.len(),
            self.split.b.len(),
            self.split.holdout.len(),
            self.publications.len(),
        ));
        for (name, s) in [("A", &self.arms[0]), ("B", &self.arms[1])] {
            out.push_str(&format!(
                "arm {name}      leakage {:.3} (baseline {:.3}, advantage {:+.3}) \
                 from {} attacks, {} wire queries\n",
                s.leakage, s.baseline, s.advantage, s.attacked, s.wire_queries,
            ));
            out.push_str(&format!(
                "           {} served | latency p50 {} µs p95 {} µs | queue p95 {} µs | \
                 service p95 {} µs\n",
                s.served, s.latency_p50_us, s.latency_p95_us, s.queue_p95_us, s.service_p95_us,
            ));
        }
        out.push_str(&format!(
            "verdict    {} at {} µs (checkpoint {})\n",
            self.verdict, self.verdict_us, self.checkpoints,
        ));
        if let Some(w) = &self.flip_window {
            out.push_str(&format!(
                "flips      {} flip-backs + {} promotions | staleness {} µs | \
                 exposed {} | degraded-after-swap {}\n",
                self.flip_backs(),
                self.promotions(),
                w.staleness_us(),
                self.exposed_responses,
                self.degraded_after_swap,
            ));
        }
        out.push_str(&format!("fingerprint {:#018x}\n", self.fingerprint()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_the_reference_vectors() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv64(b"ab"), fnv64(b"ba"));
    }

    #[test]
    fn fold_is_order_sensitive() {
        let mut a = FNV_BASIS;
        fold(&mut a, 1);
        fold(&mut a, 2);
        let mut b = FNV_BASIS;
        fold(&mut b, 2);
        fold(&mut b, 1);
        assert_ne!(a, b);
    }
}

//! Property tests for the cohort splitter: every leakage verdict in the
//! crate leans on the split being a disjoint, stable, order-blind
//! partition, so those three contracts get adversarial inputs here.

use proptest::prelude::*;

use pelican_abx::{Arm, CohortSplitter};

fn splitter_strategy() -> impl Strategy<Value = CohortSplitter> {
    // Fractions on a coarse grid so `a + b <= 1` holds by construction.
    (0u64..1 << 48, 0u32..=10, 0u32..=10).prop_map(|(seed, a, b)| {
        let fraction_a = f64::from(a) / 20.0;
        let fraction_b = f64::from(b) / 20.0;
        CohortSplitter::new(seed, fraction_a, fraction_b)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn every_split_is_a_disjoint_cover_of_its_input(
        splitter in splitter_strategy(),
        users in prop::collection::vec(0usize..5_000, 0usize..200),
    ) {
        let split = splitter.split(users.iter().copied());
        // Panics on overlap or incomplete cover.
        split.assert_partitions(users.iter().copied());
        let mut distinct = users.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(split.len(), distinct.len());
        for user in distinct {
            prop_assert_eq!(split.arm_of(user), Some(splitter.assign(user)));
        }
    }

    #[test]
    fn presentation_order_and_duplication_never_move_a_user(
        splitter in splitter_strategy(),
        users in prop::collection::vec(0usize..5_000, 1usize..120),
        rotation in 0usize..120,
    ) {
        let forward = splitter.split(users.iter().copied());
        let mut rotated = users.clone();
        rotated.rotate_left(rotation % users.len());
        prop_assert_eq!(&forward, &splitter.split(rotated));
        let doubled: Vec<usize> = users.iter().chain(users.iter()).copied().collect();
        prop_assert_eq!(&forward, &splitter.split(doubled));
        let mut reversed = users;
        reversed.reverse();
        prop_assert_eq!(&forward, &splitter.split(reversed));
    }

    #[test]
    fn assignment_is_stable_under_cohort_growth(
        splitter in splitter_strategy(),
        users in prop::collection::vec(0usize..5_000, 1usize..120),
        extra in prop::collection::vec(0usize..5_000, 0usize..60),
    ) {
        // Enrolling more users later never reassigns anyone already
        // enrolled — assignment is pointwise in (seed, user), so the
        // earlier cohorts are sublists of the later ones.
        let before = splitter.split(users.iter().copied());
        let after = splitter.split(users.iter().chain(extra.iter()).copied());
        for &user in &users {
            prop_assert_eq!(before.arm_of(user), after.arm_of(user));
        }
    }

    #[test]
    fn the_unit_coordinate_drives_the_threshold_cut(
        splitter in splitter_strategy(),
        user in 0usize..1 << 20,
    ) {
        let u = splitter.unit(user);
        prop_assert!((0.0..1.0).contains(&u), "unit coordinate {u} out of range");
        // The same user under the same seed always lands the same arm,
        // and the arm is consistent with the published coordinate.
        let arm = splitter.assign(user);
        prop_assert_eq!(arm, splitter.assign(user));
        if arm == Arm::Holdout {
            prop_assert!(u >= 0.0);
        }
    }
}

//! Latency breakdowns over finished simulations.
//!
//! Per-stage splits use the workspace's shared nearest-rank percentile
//! helper ([`pelican_tensor::nearest_rank`]), the same definition the
//! serving metrics and training reports use, so numbers are comparable
//! across subsystems.

use pelican_tensor::nearest_rank;

use crate::engine::SimOutcome;

/// Percentile summary of one stage label across completed jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageStats {
    /// The stage label summarized.
    pub label: &'static str,
    /// Completed jobs that reached the stage.
    pub jobs: usize,
    /// Median contention-added wait (µs).
    pub wait_p50_us: u64,
    /// 95th-percentile contention-added wait (µs).
    pub wait_p95_us: u64,
    /// Median stage span (µs).
    pub span_p50_us: u64,
    /// 95th-percentile stage span (µs).
    pub span_p95_us: u64,
    /// Total retry attempts beyond the first, summed over jobs.
    pub retries: u64,
}

/// Summarizes `label` stages over the completed jobs of an outcome.
pub fn stage_stats(outcome: &SimOutcome, label: &'static str) -> StageStats {
    let stages: Vec<_> =
        outcome.completed().filter_map(|j| j.stages().iter().find(|s| s.label == label)).collect();
    let mut waits: Vec<u64> = stages.iter().map(|s| s.wait_us()).collect();
    let mut spans: Vec<u64> = stages.iter().map(|s| s.span_us()).collect();
    waits.sort_unstable();
    spans.sort_unstable();
    StageStats {
        label,
        jobs: stages.len(),
        wait_p50_us: nearest_rank(&waits, 0.50).unwrap_or(0),
        wait_p95_us: nearest_rank(&waits, 0.95).unwrap_or(0),
        span_p50_us: nearest_rank(&spans, 0.50).unwrap_or(0),
        span_p95_us: nearest_rank(&spans, 0.95).unwrap_or(0),
        retries: stages.iter().map(|s| (s.attempts - 1) as u64).sum(),
    }
}

/// Nearest-rank percentile of end-to-end job spans (release → done) over
/// completed jobs; 0 if none completed.
pub fn completion_percentile(outcome: &SimOutcome, q: f64) -> u64 {
    let mut totals: Vec<u64> = outcome.completed().map(|j| j.total_us()).collect();
    totals.sort_unstable();
    nearest_rank(&totals, q).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{JobSpec, Passive, Simulator, Stage, TransferPolicy};
    use crate::link::{LinkProfile, LinkSpec};

    fn outcome() -> SimOutcome {
        let jobs: Vec<JobSpec> = (0..4)
            .map(|i| JobSpec {
                id: i,
                release_us: 0,
                stages: vec![
                    Stage::Transfer {
                        label: "upload",
                        link: 0,
                        bytes: 125_000,
                        policy: TransferPolicy::default(),
                    },
                    Stage::Compute { label: "train", duration_us: 10_000 },
                ],
            })
            .collect();
        Simulator::builder()
            .links(vec![LinkSpec::fifo(LinkProfile::wifi())])
            .build()
            .run(&jobs, &mut Passive)
    }

    #[test]
    fn stage_stats_capture_queueing() {
        let out = outcome();
        let upload = stage_stats(&out, "upload");
        assert_eq!(upload.jobs, 4);
        // Four 18 ms uploads serialize on one FIFO link: the p95 job
        // queued behind three others.
        assert_eq!(upload.span_p50_us, 36_000);
        assert_eq!(upload.wait_p95_us, 54_000);
        assert_eq!(upload.retries, 0);
        let train = stage_stats(&out, "train");
        assert_eq!(train.wait_p95_us, 0, "compute never queues");
        assert_eq!(train.span_p50_us, 10_000);
    }

    #[test]
    fn completion_percentiles_cover_the_whole_job() {
        let out = outcome();
        assert_eq!(completion_percentile(&out, 0.95), 72_000 + 10_000);
        assert!(completion_percentile(&out, 0.50) < completion_percentile(&out, 0.95));
        let empty = Simulator::builder().build().run(&[], &mut Passive);
        assert_eq!(completion_percentile(&empty, 0.95), 0);
        assert_eq!(stage_stats(&empty, "upload").jobs, 0);
    }
}

//! Sharded passive execution with a deterministic cross-shard merge.
//!
//! A passive run has no workload feedback, so the only coupling between
//! jobs is shared link state. Links are grouped into components with a
//! union-find (two links join when one job's stages touch both), whole
//! components are binned onto shards, and each shard runs an ordinary
//! [`Runner`](crate::engine) over its own jobs and links on its own
//! thread — no locks, no cross-shard state.
//!
//! Determinism is recovered by *sequential merge replay*. Each shard
//! records, per popped event in pop order, how many events its handler
//! pushed (and their deadlines) and how many trace events it emitted.
//! The merge then re-runs the global scheduler in miniature: it seeds
//! one token per initial job in global spec order (exactly the
//! admission order of the 1-shard run), repeatedly pops the earliest
//! `(time, seq)` token, consumes that shard's next pop record, assigns
//! fresh global sequence numbers to the events it pushed, and appends
//! its trace slice. Within a shard, relative event order never depends
//! on other shards (handlers read only shard-local state), so the
//! shard-local pop order *is* the global order restricted to that shard
//! — and the replayed `(time, seq)` schedule is therefore bit-identical
//! to the 1-shard run's, trace fingerprint included. This is the same
//! argument, mechanized, as the trainer-pool width invariance.

use std::collections::VecDeque;

use crate::engine::{JobSpec, Passive, Runner, ShardRun, SimOutcome, Stage, TraceLevel, TraceSink};
use crate::link::LinkSpec;
use crate::wheel::TimerWheel;

/// Union-find over link ids.
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self { parent: (0..n as u32).collect() }
    }

    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = x;
        while self.parent[cur as usize] != root {
            cur = std::mem::replace(&mut self.parent[cur as usize], root);
        }
        root
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Smaller root wins so component ids are stable and ordered.
            let (lo, hi) = (ra.min(rb), ra.max(rb));
            self.parent[hi as usize] = lo;
        }
    }
}

/// The static partition of links and jobs onto `shards` bins.
struct Partition {
    /// Global link id → local index within its owning shard.
    link_local: Vec<u32>,
    /// Per shard: owned global link ids, ascending.
    shard_links: Vec<Vec<usize>>,
    /// Per shard: global spec indices, ascending (global admission order
    /// restricted to the shard).
    shard_jobs: Vec<Vec<usize>>,
    /// Global spec index → owning shard.
    shard_of_job: Vec<u32>,
}

fn first_link(spec: &JobSpec) -> Option<usize> {
    spec.stages.iter().find_map(|s| match s {
        Stage::Transfer { link, .. } => Some(*link),
        Stage::Compute { .. } => None,
    })
}

/// Groups links into job-connected components and greedily bins whole
/// components (heaviest first, by total stage count) onto the lightest
/// shard. Jobs with no transfer stage touch no shared state and deal
/// round-robin. Every choice is deterministic, but correctness does not
/// depend on the layout: the merge replay reconstructs the global order
/// for *any* partition that keeps each component on one shard.
fn partition(links: &[LinkSpec], shards: usize, specs: &[JobSpec]) -> Partition {
    let mut uf = UnionFind::new(links.len());
    for spec in specs {
        let mut prev: Option<usize> = None;
        for stage in &spec.stages {
            if let Stage::Transfer { link, .. } = stage {
                if let Some(p) = prev {
                    uf.union(p as u32, *link as u32);
                }
                prev = Some(*link);
            }
        }
    }
    // Component weights (stage count of the jobs it carries, a proxy for
    // event volume), keyed by root link id.
    let mut weight = vec![0u64; links.len()];
    for spec in specs {
        if let Some(link) = first_link(spec) {
            weight[uf.find(link as u32) as usize] += spec.stages.len().max(1) as u64;
        }
    }
    let mut comps: Vec<(u64, u32)> = (0..links.len() as u32)
        .filter(|&l| uf.find(l) == l)
        .map(|root| (weight[root as usize], root))
        .collect();
    // Heaviest first; ties broken by the (unique) root id for stability.
    comps.sort_by_key(|&(w, root)| (std::cmp::Reverse(w), root));
    let mut bin_of_root = vec![0u32; links.len()];
    let mut load = vec![0u64; shards];
    for (w, root) in comps {
        let bin = (0..shards).min_by_key(|&b| (load[b], b)).expect("shards >= 1");
        load[bin] += w.max(1);
        bin_of_root[root as usize] = bin as u32;
    }
    let mut link_local = vec![0u32; links.len()];
    let mut shard_links = vec![Vec::new(); shards];
    for l in 0..links.len() {
        let bin = bin_of_root[uf.find(l as u32) as usize] as usize;
        link_local[l] = shard_links[bin].len() as u32;
        shard_links[bin].push(l);
    }
    let mut shard_jobs = vec![Vec::new(); shards];
    let mut shard_of_job = vec![0u32; specs.len()];
    let mut next_free = 0usize;
    for (j, spec) in specs.iter().enumerate() {
        let bin = match first_link(spec) {
            Some(link) => bin_of_root[uf.find(link as u32) as usize] as usize,
            None => {
                let b = next_free % shards;
                next_free += 1;
                b
            }
        };
        shard_of_job[j] = bin as u32;
        shard_jobs[bin].push(j);
    }
    Partition { link_local, shard_links, shard_jobs, shard_of_job }
}

/// Runs `specs` on `shards` shard-local event queues and merges the
/// results into the exact outcome of the 1-shard run (fingerprint,
/// trace, records and stage reports all bit-identical up to arena
/// layout).
pub(crate) fn run_sharded(
    links: &[LinkSpec],
    shards: usize,
    trace: TraceLevel,
    specs: &[JobSpec],
) -> SimOutcome {
    let part = partition(links, shards, specs);
    // Shard runs store their traces regardless of the trace level: the
    // merge needs the events to hash them in global order.
    let runs: Vec<ShardRun> = std::thread::scope(|scope| {
        let part = &part;
        let handles: Vec<_> = (0..shards)
            .map(|s| {
                scope.spawn(move || {
                    let mut runner = Runner::new(
                        links,
                        &part.link_local,
                        part.shard_links[s].iter().copied(),
                        true,
                    );
                    for &j in &part.shard_jobs[s] {
                        runner.admit(&specs[j], 0);
                    }
                    runner.start_merge_log();
                    runner.run(&mut Passive);
                    runner.into_shard_run()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("shard thread panicked")).collect()
    });
    merge(&part, specs, trace, runs)
}

/// Replays the global `(time, seq)` schedule from the shard logs.
fn merge(
    part: &Partition,
    specs: &[JobSpec],
    trace: TraceLevel,
    runs: Vec<ShardRun>,
) -> SimOutcome {
    let mut sink = TraceSink::new(trace == TraceLevel::Full);
    // One token per in-flight scheduled event: the payload is the shard
    // whose next pop record it is. The wheel is the same structure the
    // shards themselves ran on.
    let mut tokens: TimerWheel<u32> = TimerWheel::new();
    let mut gseq = 0u64;
    // Seed the initial releases in global spec order — exactly the
    // admission order (and seq numbers 1..=n) of the 1-shard run.
    for (j, spec) in specs.iter().enumerate() {
        gseq += 1;
        tokens.push(spec.release_us, gseq, part.shard_of_job[j]);
    }
    let mut pop_cur = vec![0usize; runs.len()];
    let mut push_cur = vec![0usize; runs.len()];
    let mut trace_cur = vec![0usize; runs.len()];
    while let Some(tok) = tokens.pop() {
        let s = tok.item as usize;
        let run = &runs[s];
        let (pushed, traced) = run.log.pops[pop_cur[s]];
        pop_cur[s] += 1;
        for _ in 0..pushed {
            let at = run.log.push_times[push_cur[s]];
            push_cur[s] += 1;
            gseq += 1;
            tokens.push(at, gseq, tok.item);
        }
        for event in &run.trace[trace_cur[s]..trace_cur[s] + traced as usize] {
            sink.push(*event);
        }
        trace_cur[s] += traced as usize;
    }
    for (s, run) in runs.iter().enumerate() {
        debug_assert_eq!(pop_cur[s], run.log.pops.len(), "merge consumed every pop record");
        debug_assert_eq!(trace_cur[s], run.trace.len(), "merge consumed every trace event");
    }
    // Reassemble records in global spec order, rebasing each shard's
    // stage ranges into one concatenated arena.
    let mut stage_arena = Vec::with_capacity(runs.iter().map(|r| r.stage_arena.len()).sum());
    let mut records = vec![None; specs.len()];
    let mut queues: Vec<VecDeque<_>> = Vec::with_capacity(runs.len());
    for run in runs {
        let offset = stage_arena.len() as u32;
        stage_arena.extend_from_slice(&run.stage_arena);
        let mut rebased: VecDeque<_> = run.records.into();
        for rec in &mut rebased {
            rec.stage_base += offset;
        }
        queues.push(rebased);
    }
    for (j, slot) in records.iter_mut().enumerate() {
        let s = part.shard_of_job[j] as usize;
        *slot = queues[s].pop_front();
    }
    let records = records.into_iter().map(|r| r.expect("every spec ran on its shard")).collect();
    SimOutcome {
        records,
        stage_arena,
        trace: sink.events,
        fingerprint: sink.hash,
        events: sink.count,
    }
}

//! The discrete-event engine: virtual clock, timer-wheel event queue,
//! shared-bandwidth links, timeouts and retry-with-backoff.
//!
//! A [`JobSpec`] is a sequence of [`Stage`]s — fixed-duration compute or a
//! byte transfer over one of the simulator's links — executed strictly in
//! order. Transfers contend: a [`Discipline::Fifo`] link serves one
//! transfer at a time in arrival order, a [`Discipline::FairShare`] link
//! drains every in-flight transfer at `bandwidth / n`. Each transfer
//! attempt can carry a timeout (measured from submission, so an attempt
//! can expire while still queued) and a [`RetryPolicy`] that resubmits
//! with exponential backoff until attempts run out.
//!
//! Simulators are built with [`Simulator::builder`] and run through one
//! entry point, [`Simulator::run`], generic over a [`Workload`]. A closed
//! replay passes [`Passive`] (every job known up front); a reactive
//! workload observes every job ending *at virtual time* and may inject
//! new jobs and timer events mid-run, which is what lets schedulers seal
//! batches on the virtual clock and training loops react to network
//! failures instead of replaying a finished run.
//!
//! Fleet scale: the event queue is a hierarchical
//! [timer wheel](crate::wheel) (O(1) schedule/fire instead of a binary
//! heap's O(log n)), and jobs, stage specs and stage reports live in
//! index-based arenas so the hot loop does no per-event allocation.
//! Passive runs on a [`SimulatorBuilder::shards`]`(n)` simulator
//! partition links and devices into shard-local event queues on `n`
//! threads and then merge deterministically (see [`crate::shard`]) —
//! the trace fingerprint is bit-identical for any shard count.
//!
//! Determinism: the event queue orders by `(time, insertion sequence)`,
//! so simultaneous events resolve in scheduling order and the entire run
//! — event trace included — is a pure function of the links, job specs
//! and (in reactive mode) the workload's deterministic responses. A
//! closed run is exactly a reactive run with a workload that never
//! reacts, so replaying the same specs through either produces
//! bit-identical traces and fingerprints. There is no randomness anywhere
//! in the engine; seeds only enter through what callers build (e.g.
//! [`crate::LinkMix::assign`]).

use std::collections::VecDeque;

use crate::link::{Discipline, LinkSpec};
use crate::trace::{self, TraceEvent};
use crate::wheel::TimerWheel;

/// Retry-with-backoff policy for failed (timed-out) transfer attempts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts allowed (>= 1; 1 means no retries).
    pub max_attempts: u32,
    /// Backoff before the second attempt, in microseconds.
    pub backoff_us: u64,
    /// Multiplier applied to the backoff after each further failure.
    pub backoff_factor: f64,
}

impl RetryPolicy {
    /// No retries: one attempt, fail on timeout.
    pub fn none() -> Self {
        Self { max_attempts: 1, backoff_us: 0, backoff_factor: 1.0 }
    }

    /// Exponential backoff: up to `max_attempts` attempts, waiting
    /// `backoff_us * factor^(k-1)` after the `k`-th failure.
    pub fn exponential(max_attempts: u32, backoff_us: u64, factor: f64) -> Self {
        Self { max_attempts, backoff_us, backoff_factor: factor }
    }

    /// Backoff after `failed_attempts` failures (1-based).
    pub fn backoff_after(&self, failed_attempts: u32) -> u64 {
        let exp = failed_attempts.saturating_sub(1) as i32;
        (self.backoff_us as f64 * self.backoff_factor.powi(exp)).round() as u64
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::none()
    }
}

/// Timeout + retry knobs of one transfer stage.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TransferPolicy {
    /// Per-attempt timeout measured from submission (`None` = never).
    pub timeout_us: Option<u64>,
    /// What happens after a timeout.
    pub retry: RetryPolicy,
}

/// One step of a job's lifecycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Stage {
    /// Occupy the job (not any link) for a fixed simulated duration.
    Compute {
        /// Stage label for reports (`train`, `audit`, ...).
        label: &'static str,
        /// Duration in microseconds.
        duration_us: u64,
    },
    /// Move bytes across a link, contending with other transfers.
    Transfer {
        /// Stage label for reports (`download`, `upload`, ...).
        label: &'static str,
        /// Index into the simulator's link table.
        link: usize,
        /// Payload size.
        bytes: u64,
        /// Timeout/retry policy.
        policy: TransferPolicy,
    },
}

impl Stage {
    /// The stage's report label.
    pub fn label(&self) -> &'static str {
        match self {
            Stage::Compute { label, .. } | Stage::Transfer { label, .. } => label,
        }
    }
}

/// One job: released at a time, then runs its stages strictly in order.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Caller-assigned id carried through traces and reports.
    pub id: u64,
    /// Simulated release time (µs).
    pub release_us: u64,
    /// Stages, executed front to back.
    pub stages: Vec<Stage>,
}

/// How a job ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JobStatus {
    /// Every stage finished.
    #[default]
    Completed,
    /// A transfer stage exhausted its attempts.
    TimedOut {
        /// Index of the failed stage.
        stage: usize,
    },
}

/// Per-stage accounting of one finished (or failed) stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageReport {
    /// The stage's label.
    pub label: &'static str,
    /// When the stage was first submitted (µs).
    pub submitted_us: u64,
    /// When it completed or was abandoned (µs).
    pub completed_us: u64,
    /// Uncontended single-attempt cost: `duration_us` for compute,
    /// latency + serialization for transfers (the empty-link FIFO bound).
    pub ideal_us: u64,
    /// Transfer attempts spent (1 for compute stages).
    pub attempts: u32,
}

impl StageReport {
    /// Wall span of the stage (includes queueing, sharing and backoffs).
    pub fn span_us(&self) -> u64 {
        self.completed_us - self.submitted_us
    }

    /// Contention-added delay: span minus the uncontended ideal.
    pub fn wait_us(&self) -> u64 {
        self.span_us().saturating_sub(self.ideal_us)
    }
}

/// Arena slot reserved before a stage runs; never visible through a
/// [`JobView`] (record ranges stop at the last stage actually entered).
const EMPTY_REPORT: StageReport =
    StageReport { label: "", submitted_us: 0, completed_us: 0, ideal_us: 0, attempts: 0 };

/// Label-based lookup shared by [`JobReport`] and [`JobView`].
fn find_stage<'a>(stages: &'a [StageReport], label: &str) -> Option<&'a StageReport> {
    stages.iter().find(|s| s.label == label)
}

/// One job's outcome, as an owned snapshot. This is what reactive
/// [`Workload`] callbacks receive; finished simulations expose the same
/// data zero-copy through [`JobView`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct JobReport {
    /// The spec's id.
    pub id: u64,
    /// Release time (µs).
    pub release_us: u64,
    /// Completion (or failure) time (µs).
    pub end_us: u64,
    /// Completed or timed out.
    pub status: JobStatus,
    /// Stage-by-stage accounting, up to and including the failing stage.
    pub stages: Vec<StageReport>,
}

impl JobReport {
    /// End-to-end span from release to completion/failure.
    pub fn total_us(&self) -> u64 {
        self.end_us - self.release_us
    }

    /// The report of the stage matching `stage`'s label, if the job
    /// reached it. Only the label participates in the match — two stages
    /// with the same label resolve to the first, exactly like the trace.
    pub fn stage_report(&self, stage: &Stage) -> Option<&StageReport> {
        find_stage(&self.stages, stage.label())
    }
}

/// How much of the event trace a run retains.
///
/// The determinism fingerprint is streamed either way; the level only
/// controls whether the full [`TraceEvent`] sequence is kept in memory —
/// at fleet scale (10⁵–10⁶ devices) retaining every transition dominates
/// the footprint, so scale runs use [`TraceLevel::Fingerprint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceLevel {
    /// Keep every engine transition in [`SimOutcome::trace`].
    #[default]
    Full,
    /// Keep only the streamed FNV fingerprint; the trace stays empty.
    Fingerprint,
}

/// One job's terminal record inside a [`SimOutcome`]: plain data plus a
/// `(base, len)` range into the outcome's stage-report arena.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobRecord {
    /// The spec's id.
    pub id: u64,
    /// Release time (µs).
    pub release_us: u64,
    /// Completion (or failure) time (µs).
    pub end_us: u64,
    /// Completed or timed out.
    pub status: JobStatus,
    pub(crate) stage_base: u32,
    pub(crate) stage_len: u32,
}

/// Zero-copy view of one job in a finished [`SimOutcome`].
#[derive(Debug, Clone, Copy)]
pub struct JobView<'a> {
    record: &'a JobRecord,
    stages: &'a [StageReport],
}

impl<'a> JobView<'a> {
    /// The spec's id.
    pub fn id(&self) -> u64 {
        self.record.id
    }

    /// Release time (µs).
    pub fn release_us(&self) -> u64 {
        self.record.release_us
    }

    /// Completion (or failure) time (µs).
    pub fn end_us(&self) -> u64 {
        self.record.end_us
    }

    /// Completed or timed out.
    pub fn status(&self) -> JobStatus {
        self.record.status
    }

    /// End-to-end span from release to completion/failure.
    pub fn total_us(&self) -> u64 {
        self.record.end_us - self.record.release_us
    }

    /// Stage-by-stage accounting, up to and including the failing stage.
    pub fn stages(&self) -> &'a [StageReport] {
        self.stages
    }

    /// The report of the stage matching `stage`'s label, if the job
    /// reached it (label-only match, see [`JobReport::stage_report`]).
    pub fn stage_report(&self, stage: &Stage) -> Option<&'a StageReport> {
        find_stage(self.stages, stage.label())
    }

    /// Owned snapshot of this job (the [`Workload`] callback shape).
    pub fn to_report(&self) -> JobReport {
        JobReport {
            id: self.record.id,
            release_us: self.record.release_us,
            end_us: self.record.end_us,
            status: self.record.status,
            stages: self.stages.to_vec(),
        }
    }
}

/// A finished simulation: per-job records (spec order, injected jobs
/// after every initial one) backed by one stage-report arena, plus the
/// event trace (empty under [`TraceLevel::Fingerprint`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    pub(crate) records: Vec<JobRecord>,
    pub(crate) stage_arena: Vec<StageReport>,
    /// Every engine transition, in execution order ([`TraceLevel::Full`]
    /// runs only).
    pub trace: Vec<TraceEvent>,
    pub(crate) fingerprint: u64,
    pub(crate) events: u64,
}

impl SimOutcome {
    /// Determinism fingerprint of the trace (see [`crate::fingerprint`]),
    /// streamed during the run — available at every [`TraceLevel`].
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of trace-visible engine transitions (counted at every
    /// [`TraceLevel`]).
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Number of jobs that ran.
    pub fn job_count(&self) -> usize {
        self.records.len()
    }

    /// The `index`-th job, in spec order.
    pub fn job(&self, index: usize) -> JobView<'_> {
        let record = &self.records[index];
        let base = record.stage_base as usize;
        JobView { record, stages: &self.stage_arena[base..base + record.stage_len as usize] }
    }

    /// Every job, in spec order.
    pub fn jobs(&self) -> impl ExactSizeIterator<Item = JobView<'_>> + '_ {
        (0..self.records.len()).map(|i| self.job(i))
    }

    /// Jobs that completed every stage.
    pub fn completed(&self) -> impl Iterator<Item = JobView<'_>> + '_ {
        self.jobs().filter(|j| j.status() == JobStatus::Completed)
    }

    /// Number of jobs that failed (exhausted transfer retries).
    pub fn timed_out(&self) -> usize {
        self.records.iter().filter(|r| matches!(r.status, JobStatus::TimedOut { .. })).count()
    }
}

/// Reactive-mode hook: observes jobs ending at virtual time and injects
/// new jobs and timers into the running simulation.
///
/// Both callbacks receive a [`SimControl`] handle scoped to the current
/// virtual instant. Determinism is preserved as long as the workload
/// itself is deterministic: injected events receive insertion sequence
/// numbers in call order, so the same inputs always replay to the same
/// `(time, seq)` schedule and the same trace.
pub trait Workload {
    /// Called the moment a job reaches a terminal state — every stage
    /// completed, or a transfer exhausted its retries (`job.status` tells
    /// which). Jobs end in virtual-time order, ties in scheduling order.
    fn on_job_end(&mut self, job: &JobReport, sim: &mut SimControl);

    /// Called when a timer set via [`SimControl::set_timer`] fires. The
    /// engine never cancels timers; workloads that re-arm deadlines
    /// should carry an epoch in `key` and ignore stale firings.
    fn on_timer(&mut self, key: u64, sim: &mut SimControl) {
        let _ = (key, sim);
    }

    /// Declares that this workload never reacts (its callbacks are
    /// no-ops). Passive runs skip report materialization and, on a
    /// multi-shard simulator, execute sharded — both without changing a
    /// single trace event. Reactive workloads must leave this `false`.
    fn passive(&self) -> bool {
        false
    }
}

/// The workload of a closed replay: never reacts, so a run is a pure
/// function of links and specs. This is what `sim.run(&specs, &mut
/// Passive)` passes where the old closed-mode `run(&specs)` was used.
pub struct Passive;

impl Workload for Passive {
    fn on_job_end(&mut self, _job: &JobReport, _sim: &mut SimControl) {}

    fn passive(&self) -> bool {
        true
    }
}

/// The caller's handle into a running reactive simulation, valid for one
/// callback invocation.
pub struct SimControl<'c, 'a> {
    now: u64,
    runner: &'c mut Runner<'a>,
}

impl SimControl<'_, '_> {
    /// The current virtual time (µs).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Injects a new job. The spec is taken by value and never mutated:
    /// all internal stamping happens in one place ([`Runner::admit`]),
    /// which clamps a release time in the past up to the current virtual
    /// instant (the clock never rewinds); the clamped time is what the
    /// job's report and trace carry.
    ///
    /// Ordering contract: the injected release is sequenced *after*
    /// every event already scheduled — including events at the current
    /// instant and jobs submitted earlier in the same callback — so
    /// same-instant injections release in call order, deterministically.
    /// The job's record appears in [`SimOutcome`] after every initial
    /// job, in injection order.
    ///
    /// # Panics
    ///
    /// Panics if a transfer references a link outside the table or a
    /// retry policy allows zero attempts.
    pub fn submit(&mut self, spec: JobSpec) {
        validate(self.runner.links, &spec);
        self.runner.admit(&spec, self.now);
    }

    /// Schedules [`Workload::on_timer`] to fire with `key` at virtual
    /// time `at` (clamped to the current instant if already past).
    pub fn set_timer(&mut self, at: u64, key: u64) {
        self.runner.push(at.max(self.now), Ev::Timer { key });
    }
}

/// Panics unless every transfer stage references a known link and allows
/// at least one attempt.
fn validate(links: &[LinkSpec], spec: &JobSpec) {
    for stage in &spec.stages {
        if let Stage::Transfer { link, policy, .. } = stage {
            assert!(*link < links.len(), "transfer references unknown link {link}");
            assert!(policy.retry.max_attempts >= 1, "retry policy needs >= 1 attempt");
        }
    }
}

/// The discrete-event simulator over a fixed link table. Built with
/// [`Simulator::builder`]; run with [`Simulator::run`].
#[derive(Debug, Clone)]
pub struct Simulator {
    links: Vec<LinkSpec>,
    shards: usize,
    trace: TraceLevel,
}

/// Builder for [`Simulator`]: the link table plus the scale knobs
/// (shard count, trace retention) that compose without positional
/// arguments.
///
/// ```
/// use pelican_sim::{LinkProfile, LinkSpec, Simulator, TraceLevel};
///
/// let sim = Simulator::builder()
///     .links(vec![LinkSpec::fifo(LinkProfile::wifi())])
///     .shards(2)
///     .trace(TraceLevel::Fingerprint)
///     .build();
/// assert_eq!(sim.link_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct SimulatorBuilder {
    links: Vec<LinkSpec>,
    shards: usize,
    trace: TraceLevel,
}

impl Default for SimulatorBuilder {
    fn default() -> Self {
        Self { links: Vec::new(), shards: 1, trace: TraceLevel::Full }
    }
}

impl SimulatorBuilder {
    /// Sets the link table (transfers index into it). Replaces any links
    /// set earlier.
    pub fn links(mut self, links: impl IntoIterator<Item = LinkSpec>) -> Self {
        self.links = links.into_iter().collect();
        self
    }

    /// Appends one link and returns the builder (the link's index is the
    /// number of links set before the call).
    pub fn link(mut self, link: LinkSpec) -> Self {
        self.links.push(link);
        self
    }

    /// Number of shard threads for passive runs (default 1). Links and
    /// devices partition into shard-local event queues whose traces merge
    /// deterministically — the fingerprint is identical for every shard
    /// count. Reactive workloads (a global sequential dependency) always
    /// run single-shard regardless of this knob.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0.
    pub fn shards(mut self, n: usize) -> Self {
        assert!(n >= 1, "shard count must be >= 1");
        self.shards = n;
        self
    }

    /// Trace retention level (default [`TraceLevel::Full`]).
    pub fn trace(mut self, level: TraceLevel) -> Self {
        self.trace = level;
        self
    }

    /// Builds the simulator.
    pub fn build(self) -> Simulator {
        Simulator { links: self.links, shards: self.shards, trace: self.trace }
    }
}

impl Simulator {
    /// Starts building a simulator.
    pub fn builder() -> SimulatorBuilder {
        SimulatorBuilder::default()
    }

    /// Number of links in the table.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Runs the simulation: `initial` jobs release as specified, and
    /// `workload` observes every job ending (and every timer firing) at
    /// virtual time, injecting further jobs and timers through the
    /// provided [`SimControl`]. A closed replay is `run(&specs, &mut
    /// Passive)` — with a workload that never reacts the run is a pure
    /// function of links and specs, bit-identical trace included.
    ///
    /// Pure: identical inputs (and a deterministic workload) give
    /// bit-identical outputs, for any shard count.
    ///
    /// # Panics
    ///
    /// Panics if a transfer (initial or injected) references a link
    /// outside the table or a retry policy allows zero attempts.
    pub fn run<W: Workload + ?Sized>(&self, initial: &[JobSpec], workload: &mut W) -> SimOutcome {
        for spec in initial {
            validate(&self.links, spec);
        }
        if self.shards > 1 && workload.passive() {
            return crate::shard::run_sharded(&self.links, self.shards, self.trace, initial);
        }
        let link_local: Vec<u32> = (0..self.links.len() as u32).collect();
        let mut runner = Runner::new(
            &self.links,
            &link_local,
            0..self.links.len(),
            self.trace == TraceLevel::Full,
        );
        for spec in initial {
            runner.admit(spec, 0);
        }
        runner.run(workload);
        runner.into_outcome()
    }
}

// ---------------------------------------------------------------------
// Engine internals.
// ---------------------------------------------------------------------

#[derive(Debug)]
enum Ev {
    Release { job: usize },
    ComputeDone { job: usize, stage: usize },
    FifoDone { link: usize, token: u64 },
    FairJoin { link: usize, job: usize, stage: usize, attempt: u32 },
    FairCheck { link: usize, epoch: u64 },
    Timeout { job: usize, stage: usize, attempt: u32 },
    Resubmit { job: usize, stage: usize },
    Timer { key: u64 },
}

#[derive(Debug, Clone, Copy)]
struct QueuedXfer {
    job: usize,
    stage: usize,
    attempt: u32,
}

#[derive(Debug, Clone, Copy)]
struct Flow {
    job: usize,
    stage: usize,
    attempt: u32,
    remaining: f64,
}

#[derive(Debug)]
enum LinkState {
    Fifo { queue: VecDeque<QueuedXfer>, current: Option<QueuedXfer>, token: u64 },
    Fair { flows: Vec<Flow>, last_us: u64, epoch: u64 },
}

/// Per-job run state — plain indices into the runner's arenas, so the
/// job table is one flat `Vec` of `Copy` rows.
#[derive(Debug, Clone, Copy)]
struct JobRun {
    id: u64,
    release_us: u64,
    spec_base: u32,
    spec_len: u32,
    report_base: u32,
    cursor: u32,
    attempt: u32,
    status: Option<JobStatus>,
}

impl JobRun {
    /// Stage reports actually entered (terminal jobs only).
    fn filled_len(&self, status: JobStatus) -> usize {
        match status {
            JobStatus::Completed => self.spec_len as usize,
            JobStatus::TimedOut { stage } => stage + 1,
        }
    }
}

/// End time of a terminal job given its filled stage reports.
fn end_of(release_us: u64, status: JobStatus, stages: &[StageReport]) -> u64 {
    match status {
        JobStatus::Completed => stages.last().map_or(release_us, |s| s.completed_us),
        JobStatus::TimedOut { .. } => {
            stages.last().expect("failed job has a failing stage").completed_us
        }
    }
}

/// Streams every trace event into the running FNV fingerprint, storing
/// the event itself only when the caller asked for a full trace.
pub(crate) struct TraceSink {
    store: bool,
    pub(crate) events: Vec<TraceEvent>,
    pub(crate) hash: u64,
    pub(crate) count: u64,
}

impl TraceSink {
    pub(crate) fn new(store: bool) -> Self {
        Self { store, events: Vec::new(), hash: trace::FNV_BASIS, count: 0 }
    }

    pub(crate) fn push(&mut self, event: TraceEvent) {
        self.hash = trace::extend(self.hash, &event);
        self.count += 1;
        if self.store {
            self.events.push(event);
        }
    }
}

/// What one shard records so the cross-shard merge can replay the global
/// `(time, seq)` order: for every popped event, in pop order, the times
/// of the events its handler pushed and the number of trace events it
/// emitted. See [`crate::shard`] for the replay argument.
#[derive(Debug, Default)]
pub(crate) struct MergeLog {
    /// Deadlines of pushed events, flat, in push order.
    pub(crate) push_times: Vec<u64>,
    /// Per popped event: `(events pushed, trace events emitted)`.
    pub(crate) pops: Vec<(u32, u32)>,
}

/// One shard's finished run, dismantled for the merge.
pub(crate) struct ShardRun {
    pub(crate) records: Vec<JobRecord>,
    pub(crate) stage_arena: Vec<StageReport>,
    pub(crate) trace: Vec<TraceEvent>,
    pub(crate) log: MergeLog,
}

pub(crate) struct Runner<'a> {
    links: &'a [LinkSpec],
    /// Global link id → index into `link_states` (identity when this
    /// runner owns every link; shard-local positions otherwise).
    link_local: &'a [u32],
    queue: TimerWheel<Ev>,
    seq: u64,
    link_states: Vec<LinkState>,
    jobs: Vec<JobRun>,
    /// Flattened stage specs of every admitted job.
    stage_specs: Vec<Stage>,
    /// Stage-report arena; each job owns `[report_base, report_base +
    /// spec_len)`, reserved at admission so the hot loop never allocates.
    stage_reports: Vec<StageReport>,
    sink: TraceSink,
    log: Option<MergeLog>,
    /// Jobs that reached a terminal state during the current event,
    /// awaiting their `on_job_end` callback (drained in order).
    finished: VecDeque<usize>,
}

impl<'a> Runner<'a> {
    /// A runner over the global `links` table owning the links in
    /// `owned` (ascending global ids, matching `link_local`'s mapping).
    pub(crate) fn new(
        links: &'a [LinkSpec],
        link_local: &'a [u32],
        owned: impl IntoIterator<Item = usize>,
        store_trace: bool,
    ) -> Self {
        let link_states = owned
            .into_iter()
            .map(|g| match links[g].discipline {
                Discipline::Fifo => {
                    LinkState::Fifo { queue: VecDeque::new(), current: None, token: 0 }
                }
                Discipline::FairShare => {
                    LinkState::Fair { flows: Vec::new(), last_us: 0, epoch: 0 }
                }
            })
            .collect();
        Self {
            links,
            link_local,
            queue: TimerWheel::new(),
            seq: 0,
            link_states,
            jobs: Vec::new(),
            stage_specs: Vec::new(),
            stage_reports: Vec::new(),
            sink: TraceSink::new(store_trace),
            log: None,
            finished: VecDeque::new(),
        }
    }

    /// Starts recording the merge log (shard runs only). Called after
    /// the initial admissions: the merge seeds those releases itself
    /// from the global spec order, so they must not appear in the log.
    pub(crate) fn start_merge_log(&mut self) {
        self.log = Some(MergeLog::default());
    }

    /// Registers a job (initial or injected) and schedules its release.
    /// This is the single stamping point for internal fields: the
    /// caller's spec is read, never mutated, and the release time is
    /// clamped to `floor_us` (0 for initial jobs, the current virtual
    /// instant for injections).
    pub(crate) fn admit(&mut self, spec: &JobSpec, floor_us: u64) {
        let j = self.jobs.len();
        let release_us = spec.release_us.max(floor_us);
        let spec_base = self.stage_specs.len() as u32;
        self.stage_specs.extend_from_slice(&spec.stages);
        let report_base = self.stage_reports.len() as u32;
        self.stage_reports.resize(self.stage_reports.len() + spec.stages.len(), EMPTY_REPORT);
        self.jobs.push(JobRun {
            id: spec.id,
            release_us,
            spec_base,
            spec_len: spec.stages.len() as u32,
            report_base,
            cursor: 0,
            attempt: 1,
            status: None,
        });
        self.push(release_us, Ev::Release { job: j });
    }

    fn push(&mut self, at: u64, ev: Ev) {
        self.seq += 1;
        if let Some(log) = &mut self.log {
            log.push_times.push(at);
        }
        self.queue.push(at, self.seq, ev);
    }

    fn id(&self, j: usize) -> u64 {
        self.jobs[j].id
    }

    /// The job's stage spec at `stage`.
    fn stage_spec(&self, j: usize, stage: usize) -> Stage {
        self.stage_specs[self.jobs[j].spec_base as usize + stage]
    }

    /// The report slot of the job's current stage.
    fn cur_report_mut(&mut self, j: usize) -> &mut StageReport {
        let run = &self.jobs[j];
        &mut self.stage_reports[(run.report_base + run.cursor) as usize]
    }

    /// Whether an event for `(job, stage, attempt)` still refers to the
    /// job's live transfer attempt.
    fn live(&self, j: usize, stage: usize, attempt: u32) -> bool {
        let job = &self.jobs[j];
        job.status.is_none() && job.cursor as usize == stage && job.attempt == attempt
    }

    pub(crate) fn run<W: Workload + ?Sized>(&mut self, workload: &mut W) {
        let passive = workload.passive();
        let mut scratch = JobReport::default();
        while let Some(entry) = self.queue.pop() {
            let at = entry.at;
            let push_mark = self.log.as_ref().map_or(0, |l| l.push_times.len());
            let trace_mark = self.sink.count;
            match entry.item {
                Ev::Timer { key } => {
                    self.sink.push(TraceEvent::TimerFired { t: at, key });
                    let mut sim = SimControl { now: at, runner: self };
                    workload.on_timer(key, &mut sim);
                }
                Ev::Release { job } => {
                    self.sink.push(TraceEvent::JobReleased { t: at, job: self.id(job) });
                    self.start_stage(job, at);
                }
                Ev::ComputeDone { job, stage } => {
                    if self.jobs[job].status.is_none() && self.jobs[job].cursor as usize == stage {
                        self.sink.push(TraceEvent::ComputeFinished {
                            t: at,
                            job: self.id(job),
                            stage,
                        });
                        self.complete_stage(job, at);
                    }
                }
                Ev::FifoDone { link, token } => self.fifo_done(link, token, at),
                Ev::FairJoin { link, job, stage, attempt } => {
                    if self.live(job, stage, attempt) {
                        self.fair_join(link, job, stage, attempt, at);
                    }
                }
                Ev::FairCheck { link, epoch } => self.fair_check(link, epoch, at),
                Ev::Timeout { job, stage, attempt } => {
                    if self.live(job, stage, attempt) {
                        self.timeout(job, stage, attempt, at);
                    }
                }
                Ev::Resubmit { job, stage } => {
                    if self.jobs[job].status.is_none() && self.jobs[job].cursor as usize == stage {
                        self.submit_transfer(job, at, false);
                    }
                }
            }
            // Jobs that just ended surface to the workload while the
            // clock still reads their end instant; reactions (submit,
            // set_timer) schedule behind every event already queued for
            // this instant, preserving `(time, seq)` determinism.
            if passive {
                self.finished.clear();
            } else {
                while let Some(j) = self.finished.pop_front() {
                    self.fill_report(j, &mut scratch);
                    let mut sim = SimControl { now: at, runner: self };
                    workload.on_job_end(&scratch, &mut sim);
                }
            }
            if let Some(log) = &mut self.log {
                let pushed = (log.push_times.len() - push_mark) as u32;
                let traced = (self.sink.count - trace_mark) as u32;
                log.pops.push((pushed, traced));
            }
        }
    }

    /// Fills `out` with one terminal job's report, reusing its stage
    /// buffer (no allocation after the first few callbacks).
    fn fill_report(&self, j: usize, out: &mut JobReport) {
        let run = &self.jobs[j];
        let status = run.status.expect("fill_report only runs on terminal jobs");
        let base = run.report_base as usize;
        let stages = &self.stage_reports[base..base + run.filled_len(status)];
        out.id = run.id;
        out.release_us = run.release_us;
        out.end_us = end_of(run.release_us, status, stages);
        out.status = status;
        out.stages.clear();
        out.stages.extend_from_slice(stages);
    }

    /// Enters the job's current stage at time `t` (or completes the job
    /// if no stages remain).
    fn start_stage(&mut self, j: usize, t: u64) {
        let run = self.jobs[j];
        if run.cursor >= run.spec_len {
            self.jobs[j].status = Some(JobStatus::Completed);
            self.sink.push(TraceEvent::JobCompleted { t, job: run.id });
            self.finished.push_back(j);
            return;
        }
        let cursor = run.cursor as usize;
        let slot = (run.report_base + run.cursor) as usize;
        match self.stage_specs[run.spec_base as usize + cursor] {
            Stage::Compute { label, duration_us } => {
                self.stage_reports[slot] = StageReport {
                    label,
                    submitted_us: t,
                    completed_us: 0,
                    ideal_us: duration_us,
                    attempts: 1,
                };
                self.sink.push(TraceEvent::ComputeStarted { t, job: run.id, stage: cursor });
                self.push(t + duration_us, Ev::ComputeDone { job: j, stage: cursor });
            }
            Stage::Transfer { label, link, bytes, .. } => {
                self.jobs[j].attempt = 1;
                self.stage_reports[slot] = StageReport {
                    label,
                    submitted_us: t,
                    completed_us: 0,
                    ideal_us: self.links[link].profile.transfer_us(bytes),
                    attempts: 1,
                };
                self.submit_transfer(j, t, true);
            }
        }
    }

    /// Submits the current transfer attempt to its link. `first` is false
    /// for retry resubmissions (the stage report keeps its original
    /// submission time).
    fn submit_transfer(&mut self, j: usize, t: u64, first: bool) {
        let stage = self.jobs[j].cursor as usize;
        let Stage::Transfer { link, policy, .. } = self.stage_spec(j, stage) else {
            unreachable!("submit_transfer on a compute stage");
        };
        let attempt = self.jobs[j].attempt;
        if !first {
            self.cur_report_mut(j).attempts = attempt;
        }
        self.sink.push(TraceEvent::TransferQueued { t, job: self.id(j), stage, link, attempt });
        if let Some(timeout_us) = policy.timeout_us {
            self.push(t + timeout_us, Ev::Timeout { job: j, stage, attempt });
        }
        let ls = self.link_local[link] as usize;
        let start_fifo = match &mut self.link_states[ls] {
            LinkState::Fifo { queue, current, .. } => {
                queue.push_back(QueuedXfer { job: j, stage, attempt });
                current.is_none()
            }
            LinkState::Fair { .. } => false,
        };
        match self.links[link].discipline {
            Discipline::Fifo => {
                if start_fifo {
                    self.fifo_start_next(link, t);
                }
            }
            Discipline::FairShare => {
                let latency = self.links[link].profile.latency_us;
                self.push(t + latency, Ev::FairJoin { link, job: j, stage, attempt });
            }
        }
    }

    /// Starts the next queued FIFO transfer if the link is idle. (It may
    /// already be busy again: completing a transfer can submit the same
    /// job's next stage to the same link, which restarts service before
    /// the completion handler regains control.)
    fn fifo_start_next(&mut self, link: usize, t: u64) {
        let ls = self.link_local[link] as usize;
        let LinkState::Fifo { queue, current, token } = &mut self.link_states[ls] else {
            unreachable!("fifo_start_next on a fair-share link");
        };
        if current.is_some() {
            return;
        }
        let Some(next) = queue.pop_front() else { return };
        *current = Some(next);
        *token += 1;
        let token = *token;
        let Stage::Transfer { bytes, .. } = self.stage_spec(next.job, next.stage) else {
            unreachable!("queued transfer is a transfer stage");
        };
        let service = self.links[link].profile.transfer_us(bytes);
        self.sink.push(TraceEvent::TransferStarted {
            t,
            job: self.id(next.job),
            stage: next.stage,
            link,
            attempt: next.attempt,
        });
        self.push(t + service, Ev::FifoDone { link, token });
    }

    fn fifo_done(&mut self, link: usize, token: u64, t: u64) {
        let ls = self.link_local[link] as usize;
        let LinkState::Fifo { current, token: cur_token, .. } = &mut self.link_states[ls] else {
            return;
        };
        if *cur_token != token {
            return; // the in-flight transfer was aborted by a timeout
        }
        let done = current.take().expect("live token implies an in-flight transfer");
        self.sink.push(TraceEvent::TransferCompleted {
            t,
            job: self.id(done.job),
            stage: done.stage,
            link,
            attempt: done.attempt,
        });
        self.complete_stage(done.job, t);
        self.fifo_start_next(link, t);
    }

    /// Drains every active fair-share flow up to `t` at the equal-share
    /// rate. Must run before any flow-set mutation.
    fn fair_advance(&mut self, link: usize, t: u64) {
        let bytes_per_sec = self.links[link].profile.bytes_per_sec;
        let ls = self.link_local[link] as usize;
        let LinkState::Fair { flows, last_us, .. } = &mut self.link_states[ls] else {
            unreachable!("fair_advance on a FIFO link");
        };
        let elapsed = t - *last_us;
        *last_us = t;
        if flows.is_empty() || elapsed == 0 {
            return;
        }
        let drained = elapsed as f64 * bytes_per_sec / flows.len() as f64 / 1e6;
        for flow in flows.iter_mut() {
            flow.remaining -= drained;
        }
    }

    /// Schedules the next completion check for a fair-share link.
    fn fair_schedule(&mut self, link: usize, t: u64) {
        let bytes_per_sec = self.links[link].profile.bytes_per_sec;
        let ls = self.link_local[link] as usize;
        let LinkState::Fair { flows, epoch, .. } = &mut self.link_states[ls] else {
            unreachable!("fair_schedule on a FIFO link");
        };
        let Some(min_remaining) = flows.iter().map(|f| f.remaining).reduce(f64::min) else {
            return;
        };
        let epoch = *epoch;
        let per_flow_us = bytes_per_sec / flows.len() as f64 / 1e6;
        let dt = (min_remaining.max(0.0) / per_flow_us).ceil() as u64;
        self.push(t + dt, Ev::FairCheck { link, epoch });
    }

    fn fair_join(&mut self, link: usize, j: usize, stage: usize, attempt: u32, t: u64) {
        self.fair_advance(link, t);
        let Stage::Transfer { bytes, .. } = self.stage_spec(j, stage) else {
            unreachable!("joined transfer is a transfer stage");
        };
        self.sink.push(TraceEvent::TransferStarted { t, job: self.id(j), stage, link, attempt });
        let ls = self.link_local[link] as usize;
        let LinkState::Fair { flows, epoch, .. } = &mut self.link_states[ls] else {
            unreachable!("fair_join on a FIFO link");
        };
        flows.push(Flow { job: j, stage, attempt, remaining: bytes as f64 });
        *epoch += 1;
        self.fair_schedule(link, t);
    }

    fn fair_check(&mut self, link: usize, epoch: u64, t: u64) {
        let ls = self.link_local[link] as usize;
        {
            let LinkState::Fair { epoch: cur, .. } = &self.link_states[ls] else { return };
            if *cur != epoch {
                return; // the flow set changed since this check was scheduled
            }
        }
        self.fair_advance(link, t);
        let done: Vec<Flow> = {
            let LinkState::Fair { flows, epoch, .. } = &mut self.link_states[ls] else {
                unreachable!("fair_check on a FIFO link");
            };
            // Half a byte of slack absorbs float rounding in the drain.
            let finished: Vec<Flow> =
                flows.iter().copied().filter(|f| f.remaining <= 0.5).collect();
            flows.retain(|f| f.remaining > 0.5);
            *epoch += 1;
            finished
        };
        for flow in done {
            self.sink.push(TraceEvent::TransferCompleted {
                t,
                job: self.id(flow.job),
                stage: flow.stage,
                link,
                attempt: flow.attempt,
            });
            self.complete_stage(flow.job, t);
        }
        self.fair_schedule(link, t);
    }

    fn timeout(&mut self, j: usize, stage: usize, attempt: u32, t: u64) {
        let Stage::Transfer { link, policy, .. } = self.stage_spec(j, stage) else {
            unreachable!("timeout on a compute stage");
        };
        let ls = self.link_local[link] as usize;
        // Withdraw the attempt from wherever it currently lives. A
        // pending FairJoin needs no removal: bumping the attempt below
        // invalidates it.
        let (start_fifo, drop_flow) = match &mut self.link_states[ls] {
            LinkState::Fifo { queue, current, token } => {
                if current.is_some_and(|c| c.job == j && c.attempt == attempt) {
                    *current = None;
                    *token += 1; // orphan the in-flight FifoDone
                    (true, false)
                } else {
                    queue.retain(|q| !(q.job == j && q.attempt == attempt));
                    (false, false)
                }
            }
            LinkState::Fair { flows, .. } => {
                (false, flows.iter().any(|f| f.job == j && f.attempt == attempt))
            }
        };
        if start_fifo {
            self.fifo_start_next(link, t);
        }
        if drop_flow {
            self.fair_advance(link, t);
            let LinkState::Fair { flows, epoch, .. } = &mut self.link_states[ls] else {
                unreachable!("drop_flow only set for fair-share links");
            };
            flows.retain(|f| !(f.job == j && f.attempt == attempt));
            *epoch += 1;
            self.fair_schedule(link, t);
        }
        self.sink.push(TraceEvent::TransferTimedOut { t, job: self.id(j), stage, link, attempt });
        if attempt < policy.retry.max_attempts {
            self.jobs[j].attempt = attempt + 1;
            let backoff = policy.retry.backoff_after(attempt);
            self.push(t + backoff, Ev::Resubmit { job: j, stage });
        } else {
            self.sink.push(TraceEvent::TransferAbandoned {
                t,
                job: self.id(j),
                stage,
                link,
                attempts: attempt,
            });
            let report = self.cur_report_mut(j);
            report.completed_us = t;
            report.attempts = attempt;
            self.jobs[j].status = Some(JobStatus::TimedOut { stage });
            self.finished.push_back(j);
        }
    }

    /// Finishes the job's current stage at `t` and enters the next one.
    fn complete_stage(&mut self, j: usize, t: u64) {
        let attempt = self.jobs[j].attempt;
        let report = self.cur_report_mut(j);
        report.completed_us = t;
        report.attempts = attempt;
        self.jobs[j].cursor += 1;
        self.jobs[j].attempt = 1;
        self.start_stage(j, t);
    }

    fn record_of(&self, run: &JobRun) -> JobRecord {
        let status = run.status.expect("event loop runs every job to a terminal state");
        let base = run.report_base as usize;
        let len = run.filled_len(status);
        let stages = &self.stage_reports[base..base + len];
        JobRecord {
            id: run.id,
            release_us: run.release_us,
            end_us: end_of(run.release_us, status, stages),
            status,
            stage_base: run.report_base,
            stage_len: len as u32,
        }
    }

    pub(crate) fn into_outcome(self) -> SimOutcome {
        let records = self.jobs.iter().map(|run| self.record_of(run)).collect();
        SimOutcome {
            records,
            stage_arena: self.stage_reports,
            trace: self.sink.events,
            fingerprint: self.sink.hash,
            events: self.sink.count,
        }
    }

    /// Dismantles a finished shard run for the cross-shard merge.
    pub(crate) fn into_shard_run(self) -> ShardRun {
        let records = self.jobs.iter().map(|run| self.record_of(run)).collect();
        ShardRun {
            records,
            stage_arena: self.stage_reports,
            trace: self.sink.events,
            log: self.log.expect("shard runs record a merge log"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkProfile;

    fn wifi_fifo() -> LinkSpec {
        LinkSpec::fifo(LinkProfile::wifi())
    }

    fn sim(links: Vec<LinkSpec>) -> Simulator {
        Simulator::builder().links(links).build()
    }

    fn xfer(link: usize, bytes: u64) -> Stage {
        Stage::Transfer { label: "xfer", link, bytes, policy: TransferPolicy::default() }
    }

    #[test]
    fn lone_transfer_pays_exactly_the_ideal() {
        let sim = sim(vec![wifi_fifo(), LinkSpec::fair(LinkProfile::wifi())]);
        for link in [0usize, 1] {
            let out = sim.run(
                &[JobSpec { id: 9, release_us: 100, stages: vec![xfer(link, 1_250_000)] }],
                &mut Passive,
            );
            let job = out.job(0);
            assert_eq!(job.status(), JobStatus::Completed);
            // 8 ms latency + 1.25 MB / 12.5 MB/s = 100 ms.
            assert_eq!(job.total_us(), 108_000, "link {link}");
            assert_eq!(job.stages()[0].wait_us(), 0);
        }
    }

    #[test]
    fn fifo_serializes_and_fair_share_splits() {
        let jobs: Vec<JobSpec> = (0..2)
            .map(|i| JobSpec { id: i, release_us: 0, stages: vec![xfer(0, 1_250_000)] })
            .collect();
        let fifo = sim(vec![wifi_fifo()]).run(&jobs, &mut Passive);
        let fair = sim(vec![LinkSpec::fair(LinkProfile::wifi())]).run(&jobs, &mut Passive);
        // FIFO: first job unaffected, second waits a full service.
        assert_eq!(fifo.job(0).end_us(), 108_000);
        assert_eq!(fifo.job(1).end_us(), 216_000);
        // Fair share: both drain at half rate and finish together, later
        // than either would alone but before the FIFO stern.
        assert_eq!(fair.job(0).end_us(), fair.job(1).end_us());
        assert!(fair.job(0).end_us() > 108_000);
        assert!(fair.job(1).end_us() < 216_000);
        for job in fair.jobs().chain(fifo.jobs()) {
            assert!(job.stages()[0].span_us() >= job.stages()[0].ideal_us);
        }
    }

    #[test]
    fn compute_overlaps_other_jobs_transfers() {
        // Job 0 computes while job 1 transfers; neither delays the other.
        let jobs = vec![
            JobSpec {
                id: 0,
                release_us: 0,
                stages: vec![Stage::Compute { label: "train", duration_us: 50_000 }],
            },
            JobSpec { id: 1, release_us: 0, stages: vec![xfer(0, 125_000)] },
        ];
        let out = sim(vec![wifi_fifo()]).run(&jobs, &mut Passive);
        assert_eq!(out.job(0).end_us(), 50_000);
        assert_eq!(out.job(1).end_us(), 18_000);
    }

    #[test]
    fn timeout_without_retry_fails_the_job() {
        let policy = TransferPolicy { timeout_us: Some(10_000), retry: RetryPolicy::none() };
        // 1.25 MB at 12.5 MB/s needs 108 ms total, far past the 10 ms cap.
        let jobs = vec![JobSpec {
            id: 0,
            release_us: 0,
            stages: vec![Stage::Transfer { label: "up", link: 0, bytes: 1_250_000, policy }],
        }];
        let out = sim(vec![wifi_fifo()]).run(&jobs, &mut Passive);
        assert_eq!(out.job(0).status(), JobStatus::TimedOut { stage: 0 });
        assert_eq!(out.job(0).end_us(), 10_000);
        assert_eq!(out.timed_out(), 1);
        assert!(out.trace.iter().any(|e| matches!(e, TraceEvent::TransferAbandoned { .. })));
    }

    #[test]
    fn retries_back_off_and_eventually_succeed_when_the_link_clears() {
        // A fat transfer hogs the FIFO link; a small one behind it times
        // out twice in queue, then succeeds on the third attempt.
        let small_policy = TransferPolicy {
            timeout_us: Some(30_000),
            retry: RetryPolicy::exponential(5, 20_000, 2.0),
        };
        let jobs = vec![
            JobSpec { id: 0, release_us: 0, stages: vec![xfer(0, 1_250_000)] },
            JobSpec {
                id: 1,
                release_us: 0,
                stages: vec![Stage::Transfer {
                    label: "up",
                    link: 0,
                    bytes: 12_500,
                    policy: small_policy,
                }],
            },
        ];
        let out = sim(vec![wifi_fifo()]).run(&jobs, &mut Passive);
        assert_eq!(out.job(1).status(), JobStatus::Completed);
        assert!(out.job(1).stages()[0].attempts > 1, "first attempt must have timed out");
        let timeouts = out
            .trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::TransferTimedOut { job: 1, .. }))
            .count();
        assert_eq!(timeouts as u32 + 1, out.job(1).stages()[0].attempts);
        assert_eq!(out.timed_out(), 0);
    }

    #[test]
    fn stages_run_strictly_in_order() {
        let jobs = vec![JobSpec {
            id: 3,
            release_us: 1_000,
            stages: vec![
                xfer(0, 125_000),
                Stage::Compute { label: "train", duration_us: 40_000 },
                xfer(0, 12_500),
            ],
        }];
        let out = sim(vec![wifi_fifo()]).run(&jobs, &mut Passive);
        let job = out.job(0);
        assert_eq!(job.status(), JobStatus::Completed);
        assert_eq!(job.stages().len(), 3);
        for pair in job.stages().windows(2) {
            assert_eq!(pair[1].submitted_us, pair[0].completed_us, "stages chain without gaps");
        }
        let total: u64 = job.stages().iter().map(|s| s.span_us()).sum();
        assert_eq!(job.total_us(), total, "per-stage spans add up to the whole job");
    }

    #[test]
    fn empty_stage_lists_and_zero_byte_transfers_complete() {
        let out = sim(vec![wifi_fifo(), LinkSpec::fair(LinkProfile::wifi())]).run(
            &[
                JobSpec { id: 0, release_us: 5, stages: Vec::new() },
                JobSpec { id: 1, release_us: 5, stages: vec![xfer(0, 0)] },
                JobSpec { id: 2, release_us: 5, stages: vec![xfer(1, 0)] },
            ],
            &mut Passive,
        );
        assert_eq!(out.timed_out(), 0);
        assert_eq!(out.job(0).end_us(), 5);
        // Zero bytes still pay propagation latency.
        assert_eq!(out.job(1).end_us(), 5 + 8_000);
        assert_eq!(out.job(2).end_us(), 5 + 8_000);
    }

    #[test]
    fn identical_inputs_give_bit_identical_traces() {
        let jobs: Vec<JobSpec> = (0..8)
            .map(|i| JobSpec {
                id: i,
                release_us: i * 500,
                stages: vec![
                    xfer(1, 40_000 + i * 1_000),
                    Stage::Compute { label: "train", duration_us: 9_000 },
                    Stage::Transfer {
                        label: "up",
                        link: 0,
                        bytes: 30_000,
                        policy: TransferPolicy {
                            timeout_us: Some(25_000),
                            retry: RetryPolicy::exponential(3, 5_000, 2.0),
                        },
                    },
                ],
            })
            .collect();
        let sim =
            sim(vec![LinkSpec::fifo(LinkProfile::cellular()), LinkSpec::fair(LinkProfile::wifi())]);
        let a = sim.run(&jobs, &mut Passive);
        let b = sim.run(&jobs, &mut Passive);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a, b);
    }

    #[test]
    fn noop_reactive_workload_matches_passive_run_bit_for_bit() {
        // A workload that reacts to nothing but does not declare itself
        // passive exercises the callback machinery; the trace must be
        // identical to the passive fast path.
        struct Noop;
        impl Workload for Noop {
            fn on_job_end(&mut self, _job: &JobReport, _sim: &mut SimControl) {}
        }
        let jobs: Vec<JobSpec> = (0..6)
            .map(|i| JobSpec {
                id: i,
                release_us: i * 700,
                stages: vec![
                    xfer(0, 200_000 + i * 7_000),
                    Stage::Compute { label: "train", duration_us: 11_000 },
                ],
            })
            .collect();
        let sim = sim(vec![wifi_fifo()]);
        let closed = sim.run(&jobs, &mut Passive);
        let reactive = sim.run(&jobs, &mut Noop);
        assert_eq!(closed.trace, reactive.trace);
        assert_eq!(closed.fingerprint(), reactive.fingerprint());
        assert_eq!(closed, reactive);
    }

    #[test]
    fn fingerprint_level_drops_the_trace_but_not_the_hash() {
        let jobs: Vec<JobSpec> = (0..4)
            .map(|i| JobSpec { id: i, release_us: i * 100, stages: vec![xfer(0, 50_000)] })
            .collect();
        let links = vec![wifi_fifo()];
        let full = sim(links.clone()).run(&jobs, &mut Passive);
        let slim = Simulator::builder()
            .links(links)
            .trace(TraceLevel::Fingerprint)
            .build()
            .run(&jobs, &mut Passive);
        assert!(slim.trace.is_empty());
        assert_eq!(slim.fingerprint(), full.fingerprint());
        assert_eq!(slim.events(), full.trace.len() as u64);
        assert_eq!(slim.job_count(), full.job_count());
        assert_eq!(slim.job(3).end_us(), full.job(3).end_us());
    }

    #[test]
    fn workload_observes_ends_and_injects_follow_up_jobs() {
        // Each completed transfer spawns a follow-up compute job at its
        // end time; the chain stops after two generations.
        struct Chain {
            seen: Vec<(u64, u64)>,
        }
        impl Workload for Chain {
            fn on_job_end(&mut self, job: &JobReport, sim: &mut SimControl) {
                assert_eq!(job.end_us, sim.now(), "callbacks run at the job's end instant");
                self.seen.push((job.id, job.end_us));
                if job.id < 100 {
                    sim.submit(JobSpec {
                        id: 100 + job.id,
                        release_us: sim.now(),
                        stages: vec![Stage::Compute { label: "follow", duration_us: 5_000 }],
                    });
                }
            }
        }
        let initial = vec![JobSpec { id: 0, release_us: 0, stages: vec![xfer(0, 125_000)] }];
        let mut chain = Chain { seen: Vec::new() };
        let out = sim(vec![wifi_fifo()]).run(&initial, &mut chain);
        // 18 ms transfer, then the injected 5 ms compute.
        assert_eq!(chain.seen, vec![(0, 18_000), (100, 23_000)]);
        assert_eq!(out.job_count(), 2, "injected jobs report after initial ones");
        assert_eq!(out.job(1).id(), 100);
        assert_eq!(out.job(1).release_us(), 18_000);
        assert_eq!(out.job(1).end_us(), 23_000);
        assert!(out.trace.iter().any(|e| matches!(e, TraceEvent::JobReleased { job: 100, .. })));
    }

    #[test]
    fn timers_fire_in_order_and_carry_their_keys() {
        struct Timers {
            fired: Vec<(u64, u64)>,
        }
        impl Workload for Timers {
            fn on_job_end(&mut self, job: &JobReport, sim: &mut SimControl) {
                // Two timers, set out of order; a past deadline clamps to now.
                if job.id == 0 {
                    sim.set_timer(40_000, 2);
                    sim.set_timer(20_000, 1);
                    sim.set_timer(3, 9);
                }
            }
            fn on_timer(&mut self, key: u64, sim: &mut SimControl) {
                self.fired.push((sim.now(), key));
                if key == 1 {
                    sim.submit(JobSpec {
                        id: 7,
                        release_us: sim.now(),
                        stages: vec![Stage::Compute { label: "late", duration_us: 1_000 }],
                    });
                }
            }
        }
        let initial = vec![JobSpec {
            id: 0,
            release_us: 0,
            stages: vec![Stage::Compute { label: "seed", duration_us: 10_000 }],
        }];
        let mut w = Timers { fired: Vec::new() };
        let out = sim(vec![wifi_fifo()]).run(&initial, &mut w);
        assert_eq!(w.fired, vec![(10_000, 9), (20_000, 1), (40_000, 2)]);
        assert_eq!(out.job_count(), 2);
        assert_eq!(out.job(1).end_us(), 21_000);
        let timer_events: Vec<u64> = out
            .trace
            .iter()
            .filter_map(|e| match e {
                TraceEvent::TimerFired { key, .. } => Some(*key),
                _ => None,
            })
            .collect();
        assert_eq!(timer_events, vec![9, 1, 2], "timers land in the trace in firing order");
    }

    #[test]
    fn timed_out_jobs_surface_to_the_workload() {
        struct Failures {
            failed: Vec<u64>,
            completed: Vec<u64>,
        }
        impl Workload for Failures {
            fn on_job_end(&mut self, job: &JobReport, _sim: &mut SimControl) {
                match job.status {
                    JobStatus::Completed => self.completed.push(job.id),
                    JobStatus::TimedOut { .. } => self.failed.push(job.id),
                }
            }
        }
        let policy = TransferPolicy { timeout_us: Some(10_000), retry: RetryPolicy::none() };
        let initial = vec![
            JobSpec {
                id: 0,
                release_us: 0,
                stages: vec![Stage::Transfer { label: "up", link: 0, bytes: 1_250_000, policy }],
            },
            JobSpec { id: 1, release_us: 0, stages: vec![xfer(0, 12_500)] },
        ];
        let mut w = Failures { failed: Vec::new(), completed: Vec::new() };
        let out = sim(vec![wifi_fifo()]).run(&initial, &mut w);
        assert_eq!(w.failed, vec![0]);
        assert_eq!(w.completed, vec![1]);
        assert_eq!(out.timed_out(), 1);
    }

    #[test]
    fn reactive_runs_are_deterministic() {
        struct Reinject;
        impl Workload for Reinject {
            fn on_job_end(&mut self, job: &JobReport, sim: &mut SimControl) {
                if job.status == JobStatus::Completed && job.id < 4 {
                    sim.submit(JobSpec {
                        id: 10 + job.id,
                        release_us: sim.now() + 1_000,
                        stages: vec![xfer(0, 50_000)],
                    });
                }
            }
        }
        let initial: Vec<JobSpec> = (0..4)
            .map(|i| JobSpec { id: i, release_us: i * 300, stages: vec![xfer(0, 90_000)] })
            .collect();
        let sim = sim(vec![wifi_fifo()]);
        let a = sim.run(&initial, &mut Reinject);
        let b = sim.run(&initial, &mut Reinject);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a, b);
        assert_eq!(a.job_count(), 8);
    }

    #[test]
    fn compute_resource_links_serialize_occupants_exactly() {
        // Two 30 ms "compute" occupancies on one shard resource: the
        // second queues behind the first, and the queue/service split is
        // exact (1 byte == 1 µs, zero latency).
        let shard = LinkSpec::fifo(LinkProfile::compute_resource("shard"));
        let jobs: Vec<JobSpec> = (0..2)
            .map(|i| JobSpec {
                id: i,
                release_us: 0,
                stages: vec![Stage::Transfer {
                    label: "compute",
                    link: 0,
                    bytes: 30_000,
                    policy: TransferPolicy::default(),
                }],
            })
            .collect();
        let out = sim(vec![shard]).run(&jobs, &mut Passive);
        assert_eq!(out.job(0).end_us(), 30_000);
        assert_eq!(out.job(1).end_us(), 60_000, "back-to-back batches queue, never overlap");
        assert_eq!(out.job(1).stages()[0].ideal_us, 30_000);
        assert_eq!(out.job(1).stages()[0].wait_us(), 30_000);
    }

    #[test]
    fn backoff_grows_exponentially() {
        let retry = RetryPolicy::exponential(4, 10_000, 2.0);
        assert_eq!(retry.backoff_after(1), 10_000);
        assert_eq!(retry.backoff_after(2), 20_000);
        assert_eq!(retry.backoff_after(3), 40_000);
        assert_eq!(RetryPolicy::none().max_attempts, 1);
    }

    #[test]
    fn stage_lookup_resolves_by_label_match() {
        let stages = vec![xfer(0, 40_000), Stage::Compute { label: "train", duration_us: 7_000 }];
        let jobs = vec![JobSpec { id: 0, release_us: 0, stages: stages.clone() }];
        let out = sim(vec![wifi_fifo()]).run(&jobs, &mut Passive);
        let job = out.job(0);
        let by_enum = job.stage_report(&stages[1]).expect("job reached the train stage");
        assert_eq!(by_enum.ideal_us, 7_000);
        assert!(job.stage_report(&Stage::Compute { label: "absent", duration_us: 1 }).is_none());
        let owned = job.to_report();
        assert_eq!(owned.stage_report(&stages[0]), job.stage_report(&stages[0]).cloned().as_ref());
        assert_eq!(owned.total_us(), job.total_us());
    }

    #[test]
    fn sharded_passive_run_matches_sequential_exactly() {
        // Two disjoint link components plus a linkless compute job; the
        // merged 3-shard run must reproduce records and fingerprint.
        let links = vec![wifi_fifo(), LinkSpec::fair(LinkProfile::cellular())];
        let jobs: Vec<JobSpec> = (0..12)
            .map(|i| JobSpec {
                id: i,
                release_us: (i % 5) * 400,
                stages: match i % 3 {
                    0 => vec![xfer((i % 2) as usize, 60_000 + i * 500)],
                    1 => vec![Stage::Compute { label: "train", duration_us: 10_000 + i * 10 }],
                    _ => vec![
                        xfer(1, 20_000),
                        Stage::Compute { label: "train", duration_us: 5_000 },
                        xfer(0, 30_000),
                    ],
                },
            })
            .collect();
        let seq = sim(links.clone()).run(&jobs, &mut Passive);
        for shards in [2usize, 3, 8] {
            let par = Simulator::builder()
                .links(links.clone())
                .shards(shards)
                .build()
                .run(&jobs, &mut Passive);
            assert_eq!(par.fingerprint(), seq.fingerprint(), "{shards} shards");
            assert_eq!(par.trace, seq.trace, "{shards} shards");
            assert_eq!(par.events(), seq.events());
            assert_eq!(par.job_count(), seq.job_count());
            for (a, b) in par.jobs().zip(seq.jobs()) {
                assert_eq!(a.id(), b.id());
                assert_eq!(a.end_us(), b.end_us());
                assert_eq!(a.status(), b.status());
                assert_eq!(a.stages(), b.stages());
            }
        }
    }
}

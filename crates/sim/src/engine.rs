//! The discrete-event engine: virtual clock, binary-heap event queue,
//! shared-bandwidth links, timeouts and retry-with-backoff.
//!
//! A [`JobSpec`] is a sequence of [`Stage`]s — fixed-duration compute or a
//! byte transfer over one of the simulator's links — executed strictly in
//! order. Transfers contend: a [`Discipline::Fifo`] link serves one
//! transfer at a time in arrival order, a [`Discipline::FairShare`] link
//! drains every in-flight transfer at `bandwidth / n`. Each transfer
//! attempt can carry a timeout (measured from submission, so an attempt
//! can expire while still queued) and a [`RetryPolicy`] that resubmits
//! with exponential backoff until attempts run out.
//!
//! The engine runs in two modes. [`Simulator::run`] is the closed replay:
//! every job is known up front and the simulation prices the fixed
//! workload. [`Simulator::run_reactive`] adds a [`Workload`] hook — the
//! caller observes every job ending (completed or timed out) *at virtual
//! time* and may inject new jobs and timer events mid-run, which is what
//! lets schedulers seal batches on the virtual clock and training loops
//! react to network failures instead of replaying a finished run.
//!
//! Determinism: the event heap orders by `(time, insertion sequence)`, so
//! simultaneous events resolve in scheduling order and the entire run —
//! event trace included — is a pure function of the links, job specs and
//! (in reactive mode) the workload's deterministic responses. A closed
//! [`Simulator::run`] is exactly `run_reactive` with a workload that never
//! reacts, so replaying the same specs through either mode produces
//! bit-identical traces and fingerprints. There is no randomness anywhere
//! in the engine; seeds only enter through what callers build (e.g.
//! [`crate::LinkMix::assign`]).

use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, VecDeque};

use crate::link::{Discipline, LinkSpec};
use crate::trace::TraceEvent;

/// Retry-with-backoff policy for failed (timed-out) transfer attempts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts allowed (>= 1; 1 means no retries).
    pub max_attempts: u32,
    /// Backoff before the second attempt, in microseconds.
    pub backoff_us: u64,
    /// Multiplier applied to the backoff after each further failure.
    pub backoff_factor: f64,
}

impl RetryPolicy {
    /// No retries: one attempt, fail on timeout.
    pub fn none() -> Self {
        Self { max_attempts: 1, backoff_us: 0, backoff_factor: 1.0 }
    }

    /// Exponential backoff: up to `max_attempts` attempts, waiting
    /// `backoff_us * factor^(k-1)` after the `k`-th failure.
    pub fn exponential(max_attempts: u32, backoff_us: u64, factor: f64) -> Self {
        Self { max_attempts, backoff_us, backoff_factor: factor }
    }

    /// Backoff after `failed_attempts` failures (1-based).
    pub fn backoff_after(&self, failed_attempts: u32) -> u64 {
        let exp = failed_attempts.saturating_sub(1) as i32;
        (self.backoff_us as f64 * self.backoff_factor.powi(exp)).round() as u64
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::none()
    }
}

/// Timeout + retry knobs of one transfer stage.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TransferPolicy {
    /// Per-attempt timeout measured from submission (`None` = never).
    pub timeout_us: Option<u64>,
    /// What happens after a timeout.
    pub retry: RetryPolicy,
}

/// One step of a job's lifecycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Stage {
    /// Occupy the job (not any link) for a fixed simulated duration.
    Compute {
        /// Stage label for reports (`train`, `audit`, ...).
        label: &'static str,
        /// Duration in microseconds.
        duration_us: u64,
    },
    /// Move bytes across a link, contending with other transfers.
    Transfer {
        /// Stage label for reports (`download`, `upload`, ...).
        label: &'static str,
        /// Index into the simulator's link table.
        link: usize,
        /// Payload size.
        bytes: u64,
        /// Timeout/retry policy.
        policy: TransferPolicy,
    },
}

impl Stage {
    /// The stage's report label.
    pub fn label(&self) -> &'static str {
        match self {
            Stage::Compute { label, .. } | Stage::Transfer { label, .. } => label,
        }
    }
}

/// One job: released at a time, then runs its stages strictly in order.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Caller-assigned id carried through traces and reports.
    pub id: u64,
    /// Simulated release time (µs).
    pub release_us: u64,
    /// Stages, executed front to back.
    pub stages: Vec<Stage>,
}

/// How a job ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Every stage finished.
    Completed,
    /// A transfer stage exhausted its attempts.
    TimedOut {
        /// Index of the failed stage.
        stage: usize,
    },
}

/// Per-stage accounting of one finished (or failed) stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageReport {
    /// The stage's label.
    pub label: &'static str,
    /// When the stage was first submitted (µs).
    pub submitted_us: u64,
    /// When it completed or was abandoned (µs).
    pub completed_us: u64,
    /// Uncontended single-attempt cost: `duration_us` for compute,
    /// latency + serialization for transfers (the empty-link FIFO bound).
    pub ideal_us: u64,
    /// Transfer attempts spent (1 for compute stages).
    pub attempts: u32,
}

impl StageReport {
    /// Wall span of the stage (includes queueing, sharing and backoffs).
    pub fn span_us(&self) -> u64 {
        self.completed_us - self.submitted_us
    }

    /// Contention-added delay: span minus the uncontended ideal.
    pub fn wait_us(&self) -> u64 {
        self.span_us().saturating_sub(self.ideal_us)
    }
}

/// One job's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct JobReport {
    /// The spec's id.
    pub id: u64,
    /// Release time (µs).
    pub release_us: u64,
    /// Completion (or failure) time (µs).
    pub end_us: u64,
    /// Completed or timed out.
    pub status: JobStatus,
    /// Stage-by-stage accounting, up to and including the failing stage.
    pub stages: Vec<StageReport>,
}

impl JobReport {
    /// End-to-end span from release to completion/failure.
    pub fn total_us(&self) -> u64 {
        self.end_us - self.release_us
    }

    /// The report of the stage with `label`, if the job reached it.
    pub fn stage(&self, label: &str) -> Option<&StageReport> {
        self.stages.iter().find(|s| s.label == label)
    }
}

/// A finished simulation: per-job reports (spec order) plus the full
/// event trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// Per-job reports, in spec order.
    pub jobs: Vec<JobReport>,
    /// Every engine transition, in execution order.
    pub trace: Vec<TraceEvent>,
}

impl SimOutcome {
    /// Determinism fingerprint of the trace (see [`crate::fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        crate::trace::fingerprint(&self.trace)
    }

    /// Jobs that completed every stage.
    pub fn completed(&self) -> impl Iterator<Item = &JobReport> {
        self.jobs.iter().filter(|j| j.status == JobStatus::Completed)
    }

    /// Number of jobs that failed (exhausted transfer retries).
    pub fn timed_out(&self) -> usize {
        self.jobs.iter().filter(|j| matches!(j.status, JobStatus::TimedOut { .. })).count()
    }
}

/// Reactive-mode hook: observes jobs ending at virtual time and injects
/// new jobs and timers into the running simulation.
///
/// Both callbacks receive a [`SimControl`] handle scoped to the current
/// virtual instant. Determinism is preserved as long as the workload
/// itself is deterministic: injected events receive insertion sequence
/// numbers in call order, so the same inputs always replay to the same
/// `(time, seq)` schedule and the same trace.
pub trait Workload {
    /// Called the moment a job reaches a terminal state — every stage
    /// completed, or a transfer exhausted its retries (`job.status` tells
    /// which). Jobs end in virtual-time order, ties in scheduling order.
    fn on_job_end(&mut self, job: &JobReport, sim: &mut SimControl);

    /// Called when a timer set via [`SimControl::set_timer`] fires. The
    /// engine never cancels timers; workloads that re-arm deadlines
    /// should carry an epoch in `key` and ignore stale firings.
    fn on_timer(&mut self, key: u64, sim: &mut SimControl) {
        let _ = (key, sim);
    }
}

/// The caller's handle into a running reactive simulation, valid for one
/// callback invocation.
pub struct SimControl<'c, 'a> {
    now: u64,
    runner: &'c mut Runner<'a>,
}

impl SimControl<'_, '_> {
    /// The current virtual time (µs).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Injects a new job. A release time in the past is clamped to the
    /// current virtual instant (the clock never rewinds); the clamped
    /// time is what the job's report and trace carry. The job's report
    /// appears in [`SimOutcome::jobs`] after every initial job, in
    /// injection order.
    ///
    /// # Panics
    ///
    /// Panics if a transfer references a link outside the table or a
    /// retry policy allows zero attempts.
    pub fn submit(&mut self, mut spec: JobSpec) {
        validate(self.runner.links, &spec);
        spec.release_us = spec.release_us.max(self.now);
        self.runner.admit(spec);
    }

    /// Schedules [`Workload::on_timer`] to fire with `key` at virtual
    /// time `at` (clamped to the current instant if already past).
    pub fn set_timer(&mut self, at: u64, key: u64) {
        self.runner.push(at.max(self.now), Ev::Timer { key });
    }
}

/// Closed-mode workload: never reacts, so `run` is a pure replay.
struct Unreactive;

impl Workload for Unreactive {
    fn on_job_end(&mut self, _job: &JobReport, _sim: &mut SimControl) {}
}

/// Panics unless every transfer stage references a known link and allows
/// at least one attempt.
fn validate(links: &[LinkSpec], spec: &JobSpec) {
    for stage in &spec.stages {
        if let Stage::Transfer { link, policy, .. } = stage {
            assert!(*link < links.len(), "transfer references unknown link {link}");
            assert!(policy.retry.max_attempts >= 1, "retry policy needs >= 1 attempt");
        }
    }
}

/// The discrete-event simulator over a fixed link table.
#[derive(Debug, Clone)]
pub struct Simulator {
    links: Vec<LinkSpec>,
}

impl Simulator {
    /// Creates a simulator over `links` (transfers index into this table).
    pub fn new(links: Vec<LinkSpec>) -> Self {
        Self { links }
    }

    /// Number of links in the table.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Runs every job to completion or failure and returns reports plus
    /// the event trace. Pure: identical inputs give bit-identical outputs.
    ///
    /// # Panics
    ///
    /// Panics if a transfer references a link outside the table or a
    /// retry policy allows zero attempts.
    pub fn run(&self, specs: &[JobSpec]) -> SimOutcome {
        self.run_reactive(specs, &mut Unreactive)
    }

    /// Runs the simulation reactively: `initial` jobs release as
    /// specified, and `workload` observes every job ending (and every
    /// timer firing) at virtual time, injecting further jobs and timers
    /// through the provided [`SimControl`]. With a workload that never
    /// reacts this is exactly [`Simulator::run`], trace included.
    ///
    /// # Panics
    ///
    /// Panics if a transfer (initial or injected) references a link
    /// outside the table or a retry policy allows zero attempts.
    pub fn run_reactive(&self, initial: &[JobSpec], workload: &mut dyn Workload) -> SimOutcome {
        for spec in initial {
            validate(&self.links, spec);
        }
        let mut runner = Runner::new(&self.links, initial.to_vec());
        runner.run(workload);
        runner.into_outcome()
    }
}

// ---------------------------------------------------------------------
// Engine internals.
// ---------------------------------------------------------------------

/// Heap entry: ordered by `(at, seq)` so ties resolve in scheduling order.
#[derive(Debug)]
struct Scheduled {
    at: u64,
    seq: u64,
    ev: Ev,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

#[derive(Debug)]
enum Ev {
    Release { job: usize },
    ComputeDone { job: usize, stage: usize },
    FifoDone { link: usize, token: u64 },
    FairJoin { link: usize, job: usize, stage: usize, attempt: u32 },
    FairCheck { link: usize, epoch: u64 },
    Timeout { job: usize, stage: usize, attempt: u32 },
    Resubmit { job: usize, stage: usize },
    Timer { key: u64 },
}

#[derive(Debug, Clone, Copy)]
struct QueuedXfer {
    job: usize,
    stage: usize,
    attempt: u32,
}

#[derive(Debug, Clone, Copy)]
struct Flow {
    job: usize,
    stage: usize,
    attempt: u32,
    remaining: f64,
}

#[derive(Debug)]
enum LinkState {
    Fifo { queue: VecDeque<QueuedXfer>, current: Option<QueuedXfer>, token: u64 },
    Fair { flows: Vec<Flow>, last_us: u64, epoch: u64 },
}

#[derive(Debug)]
struct JobRun {
    cursor: usize,
    attempt: u32,
    status: Option<JobStatus>,
    stages: Vec<StageReport>,
}

struct Runner<'a> {
    links: &'a [LinkSpec],
    specs: Vec<JobSpec>,
    heap: BinaryHeap<Reverse<Scheduled>>,
    seq: u64,
    link_states: Vec<LinkState>,
    jobs: Vec<JobRun>,
    trace: Vec<TraceEvent>,
    /// Jobs that reached a terminal state during the current event,
    /// awaiting their `on_job_end` callback (drained in order).
    finished: VecDeque<usize>,
}

impl<'a> Runner<'a> {
    fn new(links: &'a [LinkSpec], initial: Vec<JobSpec>) -> Self {
        let link_states = links
            .iter()
            .map(|l| match l.discipline {
                Discipline::Fifo => {
                    LinkState::Fifo { queue: VecDeque::new(), current: None, token: 0 }
                }
                Discipline::FairShare => {
                    LinkState::Fair { flows: Vec::new(), last_us: 0, epoch: 0 }
                }
            })
            .collect();
        let mut runner = Self {
            links,
            specs: Vec::new(),
            heap: BinaryHeap::new(),
            seq: 0,
            link_states,
            jobs: Vec::new(),
            trace: Vec::new(),
            finished: VecDeque::new(),
        };
        for spec in initial {
            runner.admit(spec);
        }
        runner
    }

    /// Registers a job (initial or injected) and schedules its release.
    fn admit(&mut self, spec: JobSpec) {
        let j = self.specs.len();
        self.jobs.push(JobRun { cursor: 0, attempt: 1, status: None, stages: Vec::new() });
        let release_us = spec.release_us;
        self.specs.push(spec);
        self.push(release_us, Ev::Release { job: j });
    }

    fn push(&mut self, at: u64, ev: Ev) {
        self.seq += 1;
        self.heap.push(Reverse(Scheduled { at, seq: self.seq, ev }));
    }

    fn id(&self, j: usize) -> u64 {
        self.specs[j].id
    }

    /// Whether an event for `(job, stage, attempt)` still refers to the
    /// job's live transfer attempt.
    fn live(&self, j: usize, stage: usize, attempt: u32) -> bool {
        let job = &self.jobs[j];
        job.status.is_none() && job.cursor == stage && job.attempt == attempt
    }

    fn run(&mut self, workload: &mut dyn Workload) {
        while let Some(Reverse(Scheduled { at, ev, .. })) = self.heap.pop() {
            match ev {
                Ev::Timer { key } => {
                    self.trace.push(TraceEvent::TimerFired { t: at, key });
                    let mut sim = SimControl { now: at, runner: self };
                    workload.on_timer(key, &mut sim);
                }
                Ev::Release { job } => {
                    self.trace.push(TraceEvent::JobReleased { t: at, job: self.id(job) });
                    self.start_stage(job, at);
                }
                Ev::ComputeDone { job, stage } => {
                    if self.jobs[job].status.is_none() && self.jobs[job].cursor == stage {
                        self.trace.push(TraceEvent::ComputeFinished {
                            t: at,
                            job: self.id(job),
                            stage,
                        });
                        self.complete_stage(job, at);
                    }
                }
                Ev::FifoDone { link, token } => self.fifo_done(link, token, at),
                Ev::FairJoin { link, job, stage, attempt } => {
                    if self.live(job, stage, attempt) {
                        self.fair_join(link, job, stage, attempt, at);
                    }
                }
                Ev::FairCheck { link, epoch } => self.fair_check(link, epoch, at),
                Ev::Timeout { job, stage, attempt } => {
                    if self.live(job, stage, attempt) {
                        self.timeout(job, stage, attempt, at);
                    }
                }
                Ev::Resubmit { job, stage } => {
                    if self.jobs[job].status.is_none() && self.jobs[job].cursor == stage {
                        self.submit_transfer(job, at, false);
                    }
                }
            }
            // Jobs that just ended surface to the workload while the
            // clock still reads their end instant; reactions (submit,
            // set_timer) schedule behind every event already queued for
            // this instant, preserving `(time, seq)` determinism.
            while let Some(j) = self.finished.pop_front() {
                let report = self.job_report(j);
                let mut sim = SimControl { now: at, runner: self };
                workload.on_job_end(&report, &mut sim);
            }
        }
    }

    /// Snapshot of one terminal job's report (for workload callbacks).
    fn job_report(&self, j: usize) -> JobReport {
        let run = &self.jobs[j];
        let spec = &self.specs[j];
        let status = run.status.expect("job_report only runs on terminal jobs");
        let end_us = match status {
            JobStatus::Completed => run.stages.last().map_or(spec.release_us, |s| s.completed_us),
            JobStatus::TimedOut { .. } => {
                run.stages.last().expect("failed job has a failing stage").completed_us
            }
        };
        JobReport {
            id: spec.id,
            release_us: spec.release_us,
            end_us,
            status,
            stages: run.stages.clone(),
        }
    }

    /// Enters the job's current stage at time `t` (or completes the job
    /// if no stages remain).
    fn start_stage(&mut self, j: usize, t: u64) {
        let Some(stage) = self.specs[j].stages.get(self.jobs[j].cursor).copied() else {
            self.jobs[j].status = Some(JobStatus::Completed);
            self.trace.push(TraceEvent::JobCompleted { t, job: self.id(j) });
            self.finished.push_back(j);
            return;
        };
        match stage {
            Stage::Compute { label, duration_us } => {
                let cursor = self.jobs[j].cursor;
                self.jobs[j].stages.push(StageReport {
                    label,
                    submitted_us: t,
                    completed_us: 0,
                    ideal_us: duration_us,
                    attempts: 1,
                });
                self.trace.push(TraceEvent::ComputeStarted { t, job: self.id(j), stage: cursor });
                self.push(t + duration_us, Ev::ComputeDone { job: j, stage: cursor });
            }
            Stage::Transfer { label, link, bytes, .. } => {
                self.jobs[j].attempt = 1;
                self.jobs[j].stages.push(StageReport {
                    label,
                    submitted_us: t,
                    completed_us: 0,
                    ideal_us: self.links[link].profile.transfer_us(bytes),
                    attempts: 1,
                });
                self.submit_transfer(j, t, true);
            }
        }
    }

    /// Submits the current transfer attempt to its link. `first` is false
    /// for retry resubmissions (the stage report keeps its original
    /// submission time).
    fn submit_transfer(&mut self, j: usize, t: u64, first: bool) {
        let stage = self.jobs[j].cursor;
        let Stage::Transfer { link, policy, .. } = self.specs[j].stages[stage] else {
            unreachable!("submit_transfer on a compute stage");
        };
        let attempt = self.jobs[j].attempt;
        if !first {
            self.jobs[j].stages.last_mut().expect("stage report exists").attempts = attempt;
        }
        self.trace.push(TraceEvent::TransferQueued { t, job: self.id(j), stage, link, attempt });
        if let Some(timeout_us) = policy.timeout_us {
            self.push(t + timeout_us, Ev::Timeout { job: j, stage, attempt });
        }
        let start_fifo = match &mut self.link_states[link] {
            LinkState::Fifo { queue, current, .. } => {
                queue.push_back(QueuedXfer { job: j, stage, attempt });
                current.is_none()
            }
            LinkState::Fair { .. } => false,
        };
        match self.links[link].discipline {
            Discipline::Fifo => {
                if start_fifo {
                    self.fifo_start_next(link, t);
                }
            }
            Discipline::FairShare => {
                let latency = self.links[link].profile.latency_us;
                self.push(t + latency, Ev::FairJoin { link, job: j, stage, attempt });
            }
        }
    }

    /// Starts the next queued FIFO transfer if the link is idle. (It may
    /// already be busy again: completing a transfer can submit the same
    /// job's next stage to the same link, which restarts service before
    /// the completion handler regains control.)
    fn fifo_start_next(&mut self, link: usize, t: u64) {
        let LinkState::Fifo { queue, current, token } = &mut self.link_states[link] else {
            unreachable!("fifo_start_next on a fair-share link");
        };
        if current.is_some() {
            return;
        }
        let Some(next) = queue.pop_front() else { return };
        *current = Some(next);
        *token += 1;
        let token = *token;
        let Stage::Transfer { bytes, .. } = self.specs[next.job].stages[next.stage] else {
            unreachable!("queued transfer is a transfer stage");
        };
        let service = self.links[link].profile.transfer_us(bytes);
        self.trace.push(TraceEvent::TransferStarted {
            t,
            job: self.id(next.job),
            stage: next.stage,
            link,
            attempt: next.attempt,
        });
        self.push(t + service, Ev::FifoDone { link, token });
    }

    fn fifo_done(&mut self, link: usize, token: u64, t: u64) {
        let LinkState::Fifo { current, token: cur_token, .. } = &mut self.link_states[link] else {
            return;
        };
        if *cur_token != token {
            return; // the in-flight transfer was aborted by a timeout
        }
        let done = current.take().expect("live token implies an in-flight transfer");
        self.trace.push(TraceEvent::TransferCompleted {
            t,
            job: self.id(done.job),
            stage: done.stage,
            link,
            attempt: done.attempt,
        });
        self.complete_stage(done.job, t);
        self.fifo_start_next(link, t);
    }

    /// Drains every active fair-share flow up to `t` at the equal-share
    /// rate. Must run before any flow-set mutation.
    fn fair_advance(&mut self, link: usize, t: u64) {
        let bytes_per_sec = self.links[link].profile.bytes_per_sec;
        let LinkState::Fair { flows, last_us, .. } = &mut self.link_states[link] else {
            unreachable!("fair_advance on a FIFO link");
        };
        let elapsed = t - *last_us;
        *last_us = t;
        if flows.is_empty() || elapsed == 0 {
            return;
        }
        let drained = elapsed as f64 * bytes_per_sec / flows.len() as f64 / 1e6;
        for flow in flows.iter_mut() {
            flow.remaining -= drained;
        }
    }

    /// Schedules the next completion check for a fair-share link.
    fn fair_schedule(&mut self, link: usize, t: u64) {
        let bytes_per_sec = self.links[link].profile.bytes_per_sec;
        let LinkState::Fair { flows, epoch, .. } = &mut self.link_states[link] else {
            unreachable!("fair_schedule on a FIFO link");
        };
        let Some(min_remaining) = flows.iter().map(|f| f.remaining).reduce(f64::min) else {
            return;
        };
        let epoch = *epoch;
        let per_flow_us = bytes_per_sec / flows.len() as f64 / 1e6;
        let dt = (min_remaining.max(0.0) / per_flow_us).ceil() as u64;
        self.push(t + dt, Ev::FairCheck { link, epoch });
    }

    fn fair_join(&mut self, link: usize, j: usize, stage: usize, attempt: u32, t: u64) {
        self.fair_advance(link, t);
        let Stage::Transfer { bytes, .. } = self.specs[j].stages[stage] else {
            unreachable!("joined transfer is a transfer stage");
        };
        self.trace.push(TraceEvent::TransferStarted { t, job: self.id(j), stage, link, attempt });
        let LinkState::Fair { flows, epoch, .. } = &mut self.link_states[link] else {
            unreachable!("fair_join on a FIFO link");
        };
        flows.push(Flow { job: j, stage, attempt, remaining: bytes as f64 });
        *epoch += 1;
        self.fair_schedule(link, t);
    }

    fn fair_check(&mut self, link: usize, epoch: u64, t: u64) {
        {
            let LinkState::Fair { epoch: cur, .. } = &self.link_states[link] else { return };
            if *cur != epoch {
                return; // the flow set changed since this check was scheduled
            }
        }
        self.fair_advance(link, t);
        let done: Vec<Flow> = {
            let LinkState::Fair { flows, epoch, .. } = &mut self.link_states[link] else {
                unreachable!("fair_check on a FIFO link");
            };
            // Half a byte of slack absorbs float rounding in the drain.
            let finished: Vec<Flow> =
                flows.iter().copied().filter(|f| f.remaining <= 0.5).collect();
            flows.retain(|f| f.remaining > 0.5);
            *epoch += 1;
            finished
        };
        for flow in done {
            self.trace.push(TraceEvent::TransferCompleted {
                t,
                job: self.id(flow.job),
                stage: flow.stage,
                link,
                attempt: flow.attempt,
            });
            self.complete_stage(flow.job, t);
        }
        self.fair_schedule(link, t);
    }

    fn timeout(&mut self, j: usize, stage: usize, attempt: u32, t: u64) {
        let Stage::Transfer { link, policy, .. } = self.specs[j].stages[stage] else {
            unreachable!("timeout on a compute stage");
        };
        // Withdraw the attempt from wherever it currently lives. A
        // pending FairJoin needs no removal: bumping the attempt below
        // invalidates it.
        let (start_fifo, drop_flow) = match &mut self.link_states[link] {
            LinkState::Fifo { queue, current, token } => {
                if current.is_some_and(|c| c.job == j && c.attempt == attempt) {
                    *current = None;
                    *token += 1; // orphan the in-flight FifoDone
                    (true, false)
                } else {
                    queue.retain(|q| !(q.job == j && q.attempt == attempt));
                    (false, false)
                }
            }
            LinkState::Fair { flows, .. } => {
                (false, flows.iter().any(|f| f.job == j && f.attempt == attempt))
            }
        };
        if start_fifo {
            self.fifo_start_next(link, t);
        }
        if drop_flow {
            self.fair_advance(link, t);
            let LinkState::Fair { flows, epoch, .. } = &mut self.link_states[link] else {
                unreachable!("drop_flow only set for fair-share links");
            };
            flows.retain(|f| !(f.job == j && f.attempt == attempt));
            *epoch += 1;
            self.fair_schedule(link, t);
        }
        self.trace.push(TraceEvent::TransferTimedOut { t, job: self.id(j), stage, link, attempt });
        if attempt < policy.retry.max_attempts {
            self.jobs[j].attempt = attempt + 1;
            let backoff = policy.retry.backoff_after(attempt);
            self.push(t + backoff, Ev::Resubmit { job: j, stage });
        } else {
            self.trace.push(TraceEvent::TransferAbandoned {
                t,
                job: self.id(j),
                stage,
                link,
                attempts: attempt,
            });
            let report = self.jobs[j].stages.last_mut().expect("stage report exists");
            report.completed_us = t;
            report.attempts = attempt;
            self.jobs[j].status = Some(JobStatus::TimedOut { stage });
            self.finished.push_back(j);
        }
    }

    /// Finishes the job's current stage at `t` and enters the next one.
    fn complete_stage(&mut self, j: usize, t: u64) {
        let job = &mut self.jobs[j];
        let report = job.stages.last_mut().expect("stage report exists");
        report.completed_us = t;
        report.attempts = job.attempt;
        job.cursor += 1;
        job.attempt = 1;
        self.start_stage(j, t);
    }

    fn into_outcome(self) -> SimOutcome {
        let jobs = self
            .jobs
            .into_iter()
            .zip(self.specs)
            .map(|(run, spec)| {
                let status = run.status.expect("event loop runs every job to a terminal state");
                let end_us = match status {
                    JobStatus::Completed => {
                        run.stages.last().map_or(spec.release_us, |s| s.completed_us)
                    }
                    JobStatus::TimedOut { .. } => {
                        run.stages.last().expect("failed job has a failing stage").completed_us
                    }
                };
                JobReport {
                    id: spec.id,
                    release_us: spec.release_us,
                    end_us,
                    status,
                    stages: run.stages,
                }
            })
            .collect();
        SimOutcome { jobs, trace: self.trace }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkProfile;

    fn wifi_fifo() -> LinkSpec {
        LinkSpec::fifo(LinkProfile::wifi())
    }

    fn xfer(link: usize, bytes: u64) -> Stage {
        Stage::Transfer { label: "xfer", link, bytes, policy: TransferPolicy::default() }
    }

    #[test]
    fn lone_transfer_pays_exactly_the_ideal() {
        let sim = Simulator::new(vec![wifi_fifo(), LinkSpec::fair(LinkProfile::wifi())]);
        for link in [0usize, 1] {
            let out =
                sim.run(&[JobSpec { id: 9, release_us: 100, stages: vec![xfer(link, 1_250_000)] }]);
            let job = &out.jobs[0];
            assert_eq!(job.status, JobStatus::Completed);
            // 8 ms latency + 1.25 MB / 12.5 MB/s = 100 ms.
            assert_eq!(job.total_us(), 108_000, "link {link}");
            assert_eq!(job.stages[0].wait_us(), 0);
        }
    }

    #[test]
    fn fifo_serializes_and_fair_share_splits() {
        let jobs: Vec<JobSpec> = (0..2)
            .map(|i| JobSpec { id: i, release_us: 0, stages: vec![xfer(0, 1_250_000)] })
            .collect();
        let fifo = Simulator::new(vec![wifi_fifo()]).run(&jobs);
        let fair = Simulator::new(vec![LinkSpec::fair(LinkProfile::wifi())]).run(&jobs);
        // FIFO: first job unaffected, second waits a full service.
        assert_eq!(fifo.jobs[0].end_us, 108_000);
        assert_eq!(fifo.jobs[1].end_us, 216_000);
        // Fair share: both drain at half rate and finish together, later
        // than either would alone but before the FIFO stern.
        assert_eq!(fair.jobs[0].end_us, fair.jobs[1].end_us);
        assert!(fair.jobs[0].end_us > 108_000);
        assert!(fair.jobs[1].end_us < 216_000);
        for job in fair.jobs.iter().chain(&fifo.jobs) {
            assert!(job.stages[0].span_us() >= job.stages[0].ideal_us);
        }
    }

    #[test]
    fn compute_overlaps_other_jobs_transfers() {
        // Job 0 computes while job 1 transfers; neither delays the other.
        let jobs = vec![
            JobSpec {
                id: 0,
                release_us: 0,
                stages: vec![Stage::Compute { label: "train", duration_us: 50_000 }],
            },
            JobSpec { id: 1, release_us: 0, stages: vec![xfer(0, 125_000)] },
        ];
        let out = Simulator::new(vec![wifi_fifo()]).run(&jobs);
        assert_eq!(out.jobs[0].end_us, 50_000);
        assert_eq!(out.jobs[1].end_us, 18_000);
    }

    #[test]
    fn timeout_without_retry_fails_the_job() {
        let policy = TransferPolicy { timeout_us: Some(10_000), retry: RetryPolicy::none() };
        // 1.25 MB at 12.5 MB/s needs 108 ms total, far past the 10 ms cap.
        let jobs = vec![JobSpec {
            id: 0,
            release_us: 0,
            stages: vec![Stage::Transfer { label: "up", link: 0, bytes: 1_250_000, policy }],
        }];
        let out = Simulator::new(vec![wifi_fifo()]).run(&jobs);
        assert_eq!(out.jobs[0].status, JobStatus::TimedOut { stage: 0 });
        assert_eq!(out.jobs[0].end_us, 10_000);
        assert_eq!(out.timed_out(), 1);
        assert!(out.trace.iter().any(|e| matches!(e, TraceEvent::TransferAbandoned { .. })));
    }

    #[test]
    fn retries_back_off_and_eventually_succeed_when_the_link_clears() {
        // A fat transfer hogs the FIFO link; a small one behind it times
        // out twice in queue, then succeeds on the third attempt.
        let small_policy = TransferPolicy {
            timeout_us: Some(30_000),
            retry: RetryPolicy::exponential(5, 20_000, 2.0),
        };
        let jobs = vec![
            JobSpec { id: 0, release_us: 0, stages: vec![xfer(0, 1_250_000)] },
            JobSpec {
                id: 1,
                release_us: 0,
                stages: vec![Stage::Transfer {
                    label: "up",
                    link: 0,
                    bytes: 12_500,
                    policy: small_policy,
                }],
            },
        ];
        let out = Simulator::new(vec![wifi_fifo()]).run(&jobs);
        assert_eq!(out.jobs[1].status, JobStatus::Completed);
        assert!(out.jobs[1].stages[0].attempts > 1, "first attempt must have timed out");
        let timeouts = out
            .trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::TransferTimedOut { job: 1, .. }))
            .count();
        assert_eq!(timeouts as u32 + 1, out.jobs[1].stages[0].attempts);
        assert_eq!(out.timed_out(), 0);
    }

    #[test]
    fn stages_run_strictly_in_order() {
        let jobs = vec![JobSpec {
            id: 3,
            release_us: 1_000,
            stages: vec![
                xfer(0, 125_000),
                Stage::Compute { label: "train", duration_us: 40_000 },
                xfer(0, 12_500),
            ],
        }];
        let out = Simulator::new(vec![wifi_fifo()]).run(&jobs);
        let job = &out.jobs[0];
        assert_eq!(job.status, JobStatus::Completed);
        assert_eq!(job.stages.len(), 3);
        for pair in job.stages.windows(2) {
            assert_eq!(pair[1].submitted_us, pair[0].completed_us, "stages chain without gaps");
        }
        let total: u64 = job.stages.iter().map(|s| s.span_us()).sum();
        assert_eq!(job.total_us(), total, "per-stage spans add up to the whole job");
    }

    #[test]
    fn empty_stage_lists_and_zero_byte_transfers_complete() {
        let out = Simulator::new(vec![wifi_fifo(), LinkSpec::fair(LinkProfile::wifi())]).run(&[
            JobSpec { id: 0, release_us: 5, stages: Vec::new() },
            JobSpec { id: 1, release_us: 5, stages: vec![xfer(0, 0)] },
            JobSpec { id: 2, release_us: 5, stages: vec![xfer(1, 0)] },
        ]);
        assert_eq!(out.timed_out(), 0);
        assert_eq!(out.jobs[0].end_us, 5);
        // Zero bytes still pay propagation latency.
        assert_eq!(out.jobs[1].end_us, 5 + 8_000);
        assert_eq!(out.jobs[2].end_us, 5 + 8_000);
    }

    #[test]
    fn identical_inputs_give_bit_identical_traces() {
        let jobs: Vec<JobSpec> = (0..8)
            .map(|i| JobSpec {
                id: i,
                release_us: i * 500,
                stages: vec![
                    xfer(1, 40_000 + i * 1_000),
                    Stage::Compute { label: "train", duration_us: 9_000 },
                    Stage::Transfer {
                        label: "up",
                        link: 0,
                        bytes: 30_000,
                        policy: TransferPolicy {
                            timeout_us: Some(25_000),
                            retry: RetryPolicy::exponential(3, 5_000, 2.0),
                        },
                    },
                ],
            })
            .collect();
        let sim = Simulator::new(vec![
            LinkSpec::fifo(LinkProfile::cellular()),
            LinkSpec::fair(LinkProfile::wifi()),
        ]);
        let a = sim.run(&jobs);
        let b = sim.run(&jobs);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.jobs, b.jobs);
    }

    #[test]
    fn reactive_with_unreactive_workload_matches_closed_run_bit_for_bit() {
        struct Passive;
        impl Workload for Passive {
            fn on_job_end(&mut self, _job: &JobReport, _sim: &mut SimControl) {}
        }
        let jobs: Vec<JobSpec> = (0..6)
            .map(|i| JobSpec {
                id: i,
                release_us: i * 700,
                stages: vec![
                    xfer(0, 200_000 + i * 7_000),
                    Stage::Compute { label: "train", duration_us: 11_000 },
                ],
            })
            .collect();
        let sim = Simulator::new(vec![wifi_fifo()]);
        let closed = sim.run(&jobs);
        let reactive = sim.run_reactive(&jobs, &mut Passive);
        assert_eq!(closed.trace, reactive.trace);
        assert_eq!(closed.fingerprint(), reactive.fingerprint());
        assert_eq!(closed.jobs, reactive.jobs);
    }

    #[test]
    fn workload_observes_ends_and_injects_follow_up_jobs() {
        // Each completed transfer spawns a follow-up compute job at its
        // end time; the chain stops after two generations.
        struct Chain {
            seen: Vec<(u64, u64)>,
        }
        impl Workload for Chain {
            fn on_job_end(&mut self, job: &JobReport, sim: &mut SimControl) {
                assert_eq!(job.end_us, sim.now(), "callbacks run at the job's end instant");
                self.seen.push((job.id, job.end_us));
                if job.id < 100 {
                    sim.submit(JobSpec {
                        id: 100 + job.id,
                        release_us: sim.now(),
                        stages: vec![Stage::Compute { label: "follow", duration_us: 5_000 }],
                    });
                }
            }
        }
        let initial = vec![JobSpec { id: 0, release_us: 0, stages: vec![xfer(0, 125_000)] }];
        let mut chain = Chain { seen: Vec::new() };
        let out = Simulator::new(vec![wifi_fifo()]).run_reactive(&initial, &mut chain);
        // 18 ms transfer, then the injected 5 ms compute.
        assert_eq!(chain.seen, vec![(0, 18_000), (100, 23_000)]);
        assert_eq!(out.jobs.len(), 2, "injected jobs report after initial ones");
        assert_eq!(out.jobs[1].id, 100);
        assert_eq!(out.jobs[1].release_us, 18_000);
        assert_eq!(out.jobs[1].end_us, 23_000);
        assert!(out.trace.iter().any(|e| matches!(e, TraceEvent::JobReleased { job: 100, .. })));
    }

    #[test]
    fn timers_fire_in_order_and_carry_their_keys() {
        struct Timers {
            fired: Vec<(u64, u64)>,
        }
        impl Workload for Timers {
            fn on_job_end(&mut self, job: &JobReport, sim: &mut SimControl) {
                // Two timers, set out of order; a past deadline clamps to now.
                if job.id == 0 {
                    sim.set_timer(40_000, 2);
                    sim.set_timer(20_000, 1);
                    sim.set_timer(3, 9);
                }
            }
            fn on_timer(&mut self, key: u64, sim: &mut SimControl) {
                self.fired.push((sim.now(), key));
                if key == 1 {
                    sim.submit(JobSpec {
                        id: 7,
                        release_us: sim.now(),
                        stages: vec![Stage::Compute { label: "late", duration_us: 1_000 }],
                    });
                }
            }
        }
        let initial = vec![JobSpec {
            id: 0,
            release_us: 0,
            stages: vec![Stage::Compute { label: "seed", duration_us: 10_000 }],
        }];
        let mut w = Timers { fired: Vec::new() };
        let out = Simulator::new(vec![wifi_fifo()]).run_reactive(&initial, &mut w);
        assert_eq!(w.fired, vec![(10_000, 9), (20_000, 1), (40_000, 2)]);
        assert_eq!(out.jobs.len(), 2);
        assert_eq!(out.jobs[1].end_us, 21_000);
        let timer_events: Vec<u64> = out
            .trace
            .iter()
            .filter_map(|e| match e {
                TraceEvent::TimerFired { key, .. } => Some(*key),
                _ => None,
            })
            .collect();
        assert_eq!(timer_events, vec![9, 1, 2], "timers land in the trace in firing order");
    }

    #[test]
    fn timed_out_jobs_surface_to_the_workload() {
        struct Failures {
            failed: Vec<u64>,
            completed: Vec<u64>,
        }
        impl Workload for Failures {
            fn on_job_end(&mut self, job: &JobReport, _sim: &mut SimControl) {
                match job.status {
                    JobStatus::Completed => self.completed.push(job.id),
                    JobStatus::TimedOut { .. } => self.failed.push(job.id),
                }
            }
        }
        let policy = TransferPolicy { timeout_us: Some(10_000), retry: RetryPolicy::none() };
        let initial = vec![
            JobSpec {
                id: 0,
                release_us: 0,
                stages: vec![Stage::Transfer { label: "up", link: 0, bytes: 1_250_000, policy }],
            },
            JobSpec { id: 1, release_us: 0, stages: vec![xfer(0, 12_500)] },
        ];
        let mut w = Failures { failed: Vec::new(), completed: Vec::new() };
        let out = Simulator::new(vec![wifi_fifo()]).run_reactive(&initial, &mut w);
        assert_eq!(w.failed, vec![0]);
        assert_eq!(w.completed, vec![1]);
        assert_eq!(out.timed_out(), 1);
    }

    #[test]
    fn reactive_runs_are_deterministic() {
        struct Reinject;
        impl Workload for Reinject {
            fn on_job_end(&mut self, job: &JobReport, sim: &mut SimControl) {
                if job.status == JobStatus::Completed && job.id < 4 {
                    sim.submit(JobSpec {
                        id: 10 + job.id,
                        release_us: sim.now() + 1_000,
                        stages: vec![xfer(0, 50_000)],
                    });
                }
            }
        }
        let initial: Vec<JobSpec> = (0..4)
            .map(|i| JobSpec { id: i, release_us: i * 300, stages: vec![xfer(0, 90_000)] })
            .collect();
        let sim = Simulator::new(vec![wifi_fifo()]);
        let a = sim.run_reactive(&initial, &mut Reinject);
        let b = sim.run_reactive(&initial, &mut Reinject);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.jobs, b.jobs);
        assert_eq!(a.jobs.len(), 8);
    }

    #[test]
    fn compute_resource_links_serialize_occupants_exactly() {
        // Two 30 ms "compute" occupancies on one shard resource: the
        // second queues behind the first, and the queue/service split is
        // exact (1 byte == 1 µs, zero latency).
        let shard = LinkSpec::fifo(LinkProfile::compute_resource("shard"));
        let jobs: Vec<JobSpec> = (0..2)
            .map(|i| JobSpec {
                id: i,
                release_us: 0,
                stages: vec![Stage::Transfer {
                    label: "compute",
                    link: 0,
                    bytes: 30_000,
                    policy: TransferPolicy::default(),
                }],
            })
            .collect();
        let out = Simulator::new(vec![shard]).run(&jobs);
        assert_eq!(out.jobs[0].end_us, 30_000);
        assert_eq!(out.jobs[1].end_us, 60_000, "back-to-back batches queue, never overlap");
        assert_eq!(out.jobs[1].stages[0].ideal_us, 30_000);
        assert_eq!(out.jobs[1].stages[0].wait_us(), 30_000);
    }

    #[test]
    fn backoff_grows_exponentially() {
        let retry = RetryPolicy::exponential(4, 10_000, 2.0);
        assert_eq!(retry.backoff_after(1), 10_000);
        assert_eq!(retry.backoff_after(2), 20_000);
        assert_eq!(retry.backoff_after(3), 40_000);
        assert_eq!(RetryPolicy::none().max_attempts, 1);
    }
}

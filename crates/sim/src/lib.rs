//! **`pelican-sim`** — a deterministic discrete-event network simulator
//! for the device↔cloud fleet, built to scale to 10⁵–10⁶ devices.
//!
//! The reproduction's fleet subsystems move model envelopes and query
//! payloads across the device↔cloud boundary: general-model downloads
//! (Fig. 4 step 2), personalized-model publication uploads (step 4) and
//! cloud-served queries (step 3). Before this crate the platform layer
//! priced every transfer as an isolated `latency + bytes/bandwidth`
//! duration — no contention, no overlap with compute, no stragglers.
//! `pelican-sim` replaces that with a proper discrete-event simulation:
//!
//! * [`engine`] — a virtual clock and timer-wheel event queue driving
//!   [`JobSpec`]s (ordered compute/transfer stages) to completion.
//!   Transfers contend on shared links, can time out (even while still
//!   queued) and retry with exponential backoff. Simulators are
//!   assembled with [`Simulator::builder`] (links, shard count, trace
//!   retention) and run through one entry point, [`Simulator::run`],
//!   generic over a [`Workload`]: pass [`Passive`] for a closed replay,
//!   or a reactive workload that observes every job ending at virtual
//!   time and injects new jobs and timer events mid-run — the hook the
//!   serving scheduler and the closed-loop training co-simulation are
//!   built on.
//! * [`wheel`] — the hierarchical [`TimerWheel`] behind the engine:
//!   O(1) schedule/fire with a sorted far-future overflow bucket,
//!   popping in exactly the `(time, seq)` order of the binary heap it
//!   replaced.
//! * [`link`] — [`LinkProfile`]s (wifi/WAN/cellular), the FIFO and
//!   fair-share (processor sharing) bandwidth [`Discipline`]s, and
//!   seeded heterogeneous fleet assignment via [`LinkMix`], including
//!   straggler injection.
//! * [`trace`] — every engine transition in execution order, collapsed
//!   to a [`fingerprint`] so end-to-end determinism (same seed ⇒
//!   bit-identical traces, regardless of host, caller thread counts or
//!   [`SimulatorBuilder::shards`] setting) is cheap to assert on every
//!   run. At fleet scale, [`TraceLevel::Fingerprint`] streams the hash
//!   without retaining events.
//! * [`report`] — per-stage queue/service latency splits using the
//!   workspace's shared nearest-rank percentile helper.
//!
//! The engine is deliberately free of randomness and host-clock reads:
//! ties on the virtual clock resolve by insertion order, so a simulation
//! is a pure function of its links and job specs. Seeds only enter
//! through [`LinkMix::assign`], which deals each device its link as a
//! pure function of `(seed, device)`.
//!
//! # Example
//!
//! ```
//! use pelican_sim::{
//!     JobSpec, LinkMix, LinkProfile, LinkSpec, Passive, Simulator, Stage, TransferPolicy,
//! };
//!
//! // Two devices upload 100 kB each over one shared FIFO uplink while a
//! // third trains locally.
//! let sim = Simulator::builder().links(vec![LinkSpec::fifo(LinkProfile::wifi())]).build();
//! let upload = |id| JobSpec {
//!     id,
//!     release_us: 0,
//!     stages: vec![Stage::Transfer {
//!         label: "upload",
//!         link: 0,
//!         bytes: 100_000,
//!         policy: TransferPolicy::default(),
//!     }],
//! };
//! let trainer = JobSpec {
//!     id: 2,
//!     release_us: 0,
//!     stages: vec![Stage::Compute { label: "train", duration_us: 30_000 }],
//! };
//! let jobs = vec![upload(0), upload(1), trainer];
//! let out = sim.run(&jobs, &mut Passive);
//! assert_eq!(out.timed_out(), 0);
//! // The second upload queued behind the first; training overlapped both.
//! assert!(out.job(1).end_us() > out.job(0).end_us());
//! assert_eq!(out.job(2).end_us(), 30_000);
//! assert_eq!(out.fingerprint(), sim.run(&jobs, &mut Passive).fingerprint());
//!
//! // Heterogeneous fleets: links are dealt deterministically per device.
//! let mix = LinkMix::campus();
//! assert_eq!(mix.assign(7, 3), mix.assign(7, 3));
//! ```

pub mod engine;
pub mod link;
pub mod report;
pub(crate) mod shard;
pub mod trace;
pub mod wheel;

pub use engine::{
    JobRecord, JobReport, JobSpec, JobStatus, JobView, Passive, RetryPolicy, SimControl,
    SimOutcome, Simulator, SimulatorBuilder, Stage, StageReport, TraceLevel, TransferPolicy,
    Workload,
};
pub use link::{mix64, DeviceLink, Discipline, LinkMix, LinkProfile, LinkSpec, StragglerConfig};
pub use report::{completion_percentile, stage_stats, StageStats};
pub use trace::{fingerprint, TraceEvent};
pub use wheel::TimerWheel;

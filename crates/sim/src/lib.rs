//! **`pelican-sim`** — a deterministic discrete-event network simulator
//! for the device↔cloud fleet.
//!
//! The reproduction's fleet subsystems move model envelopes and query
//! payloads across the device↔cloud boundary: general-model downloads
//! (Fig. 4 step 2), personalized-model publication uploads (step 4) and
//! cloud-served queries (step 3). Before this crate the platform layer
//! priced every transfer as an isolated `latency + bytes/bandwidth`
//! duration — no contention, no overlap with compute, no stragglers.
//! `pelican-sim` replaces that with a proper discrete-event simulation:
//!
//! * [`engine`] — a virtual clock and binary-heap event queue driving
//!   [`JobSpec`]s (ordered compute/transfer stages) to completion.
//!   Transfers contend on shared links, can time out (even while still
//!   queued) and retry with exponential backoff. Beyond the closed
//!   replay ([`Simulator::run`]), the reactive mode
//!   ([`Simulator::run_reactive`]) hands every job ending to a
//!   [`Workload`] at virtual time and lets it inject new jobs and timer
//!   events mid-run — the hook the serving scheduler and the closed-loop
//!   training co-simulation are built on.
//! * [`link`] — [`LinkProfile`]s (wifi/WAN/cellular), the FIFO and
//!   fair-share (processor sharing) bandwidth [`Discipline`]s, and
//!   seeded heterogeneous fleet assignment via [`LinkMix`], including
//!   straggler injection.
//! * [`trace`] — every engine transition in execution order, collapsed
//!   to a [`fingerprint`] so end-to-end determinism (same seed ⇒
//!   bit-identical traces, regardless of host or caller thread counts)
//!   is cheap to assert on every run.
//! * [`report`] — per-stage queue/service latency splits using the
//!   workspace's shared nearest-rank percentile helper.
//!
//! The engine is deliberately free of randomness and host-clock reads:
//! ties on the virtual clock resolve by insertion order, so a simulation
//! is a pure function of its links and job specs. Seeds only enter
//! through [`LinkMix::assign`], which deals each device its link as a
//! pure function of `(seed, device)`.
//!
//! # Example
//!
//! ```
//! use pelican_sim::{
//!     JobSpec, LinkMix, LinkProfile, LinkSpec, Simulator, Stage, TransferPolicy,
//! };
//!
//! // Two devices upload 100 kB each over one shared FIFO uplink while a
//! // third trains locally.
//! let sim = Simulator::new(vec![LinkSpec::fifo(LinkProfile::wifi())]);
//! let upload = |id| JobSpec {
//!     id,
//!     release_us: 0,
//!     stages: vec![Stage::Transfer {
//!         label: "upload",
//!         link: 0,
//!         bytes: 100_000,
//!         policy: TransferPolicy::default(),
//!     }],
//! };
//! let trainer = JobSpec {
//!     id: 2,
//!     release_us: 0,
//!     stages: vec![Stage::Compute { label: "train", duration_us: 30_000 }],
//! };
//! let jobs = vec![upload(0), upload(1), trainer];
//! let out = sim.run(&jobs);
//! assert_eq!(out.timed_out(), 0);
//! // The second upload queued behind the first; training overlapped both.
//! assert!(out.jobs[1].end_us > out.jobs[0].end_us);
//! assert_eq!(out.jobs[2].end_us, 30_000);
//! assert_eq!(out.fingerprint(), sim.run(&jobs).fingerprint());
//!
//! // Heterogeneous fleets: links are dealt deterministically per device.
//! let mix = LinkMix::campus();
//! assert_eq!(mix.assign(7, 3), mix.assign(7, 3));
//! ```

pub mod engine;
pub mod link;
pub mod report;
pub mod trace;

pub use engine::{
    JobReport, JobSpec, JobStatus, RetryPolicy, SimControl, SimOutcome, Simulator, Stage,
    StageReport, TransferPolicy, Workload,
};
pub use link::{mix64, DeviceLink, Discipline, LinkMix, LinkProfile, LinkSpec, StragglerConfig};
pub use report::{completion_percentile, stage_stats, StageStats};
pub use trace::{fingerprint, TraceEvent};

//! Hierarchical timer wheel: the engine's O(1) event queue.
//!
//! A binary heap spends `O(log n)` per schedule/fire, which at 10⁵–10⁶
//! concurrent devices puts the comparator on every profile. The wheel
//! replaces it with the classic hashed-and-hierarchical scheme
//! (Varghese & Lauck): [`LEVELS`] levels of [`SLOTS`] slots each, where
//! a level-`l` slot spans `64^l` µs, so level 0 resolves single
//! microseconds and the top level covers ~19 virtual hours. Scheduling
//! hashes the deadline to one slot (a shift and a mask); firing scans a
//! 64-bit occupancy bitmap per level with `trailing_zeros`. Events
//! beyond the wheel's horizon fall back to a sorted far-future bucket
//! that refills the wheel when everything nearer has fired.
//!
//! The wheel preserves the engine's determinism contract exactly: entries
//! pop in `(time, seq)` order, identical to the `BinaryHeap<Reverse<_>>`
//! it replaces (a property test pins this against the reference heap on
//! random schedule/fire interleavings). Same-instant entries in one slot
//! are ordered by `seq` with one sort per batch — amortized O(1) because
//! each entry is sorted at most once.
//!
//! There is no global time authority here: [`TimerWheel::now`] only
//! advances when the caller pops, so the wheel is a pure priority queue
//! over `(at, seq)` with the restriction (natural for discrete-event
//! simulation) that pushes never schedule before the last popped time.

use std::collections::VecDeque;
use std::mem;

/// Bits per level: each level has `2^SLOT_BITS` slots.
const SLOT_BITS: u32 = 6;
/// Slots per level.
pub const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel depth. Horizon = `2^(SLOT_BITS * LEVELS)` µs ≈ 19.1 hours.
pub const LEVELS: usize = 6;
/// Deadlines at or beyond `now + HORIZON_US` may land in the overflow
/// bucket (the exact cutoff is the enclosing `2^36`-aligned window).
pub const HORIZON_US: u64 = 1 << (SLOT_BITS * LEVELS as u32);

/// One scheduled entry: fires at `at`, ties broken by `seq`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry<T> {
    /// Deadline in µs of virtual time.
    pub at: u64,
    /// Global insertion sequence; the tie-breaker at equal deadlines.
    pub seq: u64,
    /// Caller payload.
    pub item: T,
}

#[derive(Debug, Clone)]
struct Level<T> {
    /// Bit `s` set ⇔ `slots[s]` is non-empty.
    occupied: u64,
    slots: Vec<Vec<Entry<T>>>,
}

impl<T> Level<T> {
    fn new() -> Self {
        Self { occupied: 0, slots: (0..SLOTS).map(|_| Vec::new()).collect() }
    }
}

/// A hierarchical timer wheel ordering entries by `(at, seq)`.
///
/// Pops must be monotone and pushes may not schedule into the past:
/// `push` debug-asserts `at >= now()`, where `now()` is the deadline of
/// the most recently popped entry. Within those rules the pop order is
/// bit-identical to a min-heap over `(at, seq)`.
#[derive(Debug, Clone)]
pub struct TimerWheel<T> {
    now: u64,
    /// Entries currently held in `levels` + `ready` (overflow excluded).
    len: usize,
    levels: Vec<Level<T>>,
    /// The current instant's batch, already sorted by `seq`.
    ready: VecDeque<Entry<T>>,
    /// Beyond-horizon entries; sorted ascending by `(at, seq)` lazily.
    overflow: Vec<Entry<T>>,
    overflow_sorted: bool,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimerWheel<T> {
    /// An empty wheel with the clock at 0.
    pub fn new() -> Self {
        Self {
            now: 0,
            len: 0,
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            ready: VecDeque::new(),
            overflow: Vec::new(),
            overflow_sorted: true,
        }
    }

    /// The deadline of the most recently popped entry (0 before any pop).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of scheduled entries.
    pub fn len(&self) -> usize {
        self.len + self.overflow.len()
    }

    /// Whether no entries are scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0 && self.overflow.is_empty()
    }

    /// Schedules `item` at `(at, seq)`.
    ///
    /// `at` must not precede the last popped deadline and `seq` is
    /// expected to be unique and increasing in call order — both hold by
    /// construction inside the engine (the clock never rewinds and seqs
    /// come from one counter).
    pub fn push(&mut self, at: u64, seq: u64, item: T) {
        debug_assert!(at >= self.now, "schedule into the past: at={at} now={}", self.now);
        self.place(Entry { at, seq, item });
    }

    /// Routes an entry to its level/slot, or to the overflow bucket.
    fn place(&mut self, e: Entry<T>) {
        let diff = e.at ^ self.now;
        let level = if diff == 0 { 0 } else { ((63 - diff.leading_zeros()) / SLOT_BITS) as usize };
        if level >= LEVELS {
            // Sorted-order appends (the common refill pattern) keep the
            // bucket sorted without paying a re-sort.
            if self.overflow_sorted {
                if let Some(last) = self.overflow.last() {
                    if (e.at, e.seq) < (last.at, last.seq) {
                        self.overflow_sorted = false;
                    }
                }
            }
            self.overflow.push(e);
            return;
        }
        let slot = ((e.at >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        let lv = &mut self.levels[level];
        lv.slots[slot].push(e);
        lv.occupied |= 1 << slot;
        self.len += 1;
    }

    /// Removes and returns the earliest entry (`(at, seq)` order), or
    /// `None` if the wheel is empty. Advances [`TimerWheel::now`] to the
    /// returned deadline.
    pub fn pop(&mut self) -> Option<Entry<T>> {
        loop {
            if let Some(e) = self.ready.pop_front() {
                self.len -= 1;
                self.now = e.at;
                return Some(e);
            }
            if self.len == 0 {
                if self.overflow.is_empty() {
                    return None;
                }
                self.refill();
                continue;
            }
            if self.levels[0].occupied == 0 {
                self.cascade();
                continue;
            }
            // Lowest occupied level-0 slot is the next instant: every
            // entry is >= now, so no slot below now's position is set.
            let slot = self.levels[0].occupied.trailing_zeros() as usize;
            self.levels[0].occupied &= !(1 << slot);
            let mut batch = mem::take(&mut self.levels[0].slots[slot]);
            if batch.len() > 1 {
                batch.sort_unstable_by_key(|e| e.seq);
            }
            debug_assert!(batch.windows(2).all(|w| w[0].at == w[1].at));
            self.ready.extend(batch.drain(..));
            self.levels[0].slots[slot] = batch; // hand the allocation back
        }
    }

    /// Advances the clock to the earliest occupied higher-level slot and
    /// re-places its entries one level (or more) down.
    fn cascade(&mut self) {
        for level in 1..LEVELS {
            if self.levels[level].occupied == 0 {
                continue;
            }
            let slot = self.levels[level].occupied.trailing_zeros() as usize;
            let shift = SLOT_BITS * level as u32;
            // Jump now to the start of that slot's window; entries inside
            // re-place strictly below `level` because their upper bits now
            // match the clock.
            let upper = self.now >> (shift + SLOT_BITS) << (shift + SLOT_BITS);
            self.now = upper | (slot as u64) << shift;
            self.levels[level].occupied &= !(1 << slot);
            let mut batch = mem::take(&mut self.levels[level].slots[slot]);
            self.len -= batch.len();
            for e in batch.drain(..) {
                self.place(e);
            }
            self.levels[level].slots[slot] = batch;
            return;
        }
        unreachable!("cascade with entries on the wheel but no occupied level");
    }

    /// All wheel levels drained: move the overflow prefix that now fits
    /// under the horizon back onto the wheel.
    fn refill(&mut self) {
        debug_assert_eq!(self.len, 0);
        if !self.overflow_sorted {
            self.overflow.sort_unstable_by_key(|e| (e.at, e.seq));
            self.overflow_sorted = true;
        }
        self.now = self.overflow[0].at;
        // The wheel's addressable window is the 2^36-aligned span around
        // `now`; the overflow is sorted, so eligible entries are a prefix.
        let window_end =
            (self.now >> (SLOT_BITS * LEVELS as u32) << (SLOT_BITS * LEVELS as u32)) + HORIZON_US;
        let cut = self.overflow.partition_point(|e| e.at < window_end);
        let rest = self.overflow.split_off(cut);
        let refit = mem::replace(&mut self.overflow, rest);
        for e in refit {
            self.place(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    fn drain(wheel: &mut TimerWheel<u32>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some(e) = wheel.pop() {
            out.push((e.at, e.seq));
        }
        out
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w = TimerWheel::new();
        w.push(50, 1, 0);
        w.push(10, 2, 0);
        w.push(10, 3, 0);
        w.push(0, 4, 0);
        assert_eq!(w.len(), 4);
        assert_eq!(drain(&mut w), vec![(0, 4), (10, 2), (10, 3), (50, 1)]);
        assert!(w.is_empty());
    }

    #[test]
    fn same_instant_pushes_during_pop_fire_after_ready_batch() {
        let mut w = TimerWheel::new();
        w.push(5, 1, 0);
        w.push(5, 2, 0);
        let first = w.pop().unwrap();
        assert_eq!((first.at, first.seq), (5, 1));
        // A handler scheduling at the current instant gets a larger seq
        // and must fire after the already-extracted batch.
        w.push(5, 3, 0);
        assert_eq!(drain(&mut w), vec![(5, 2), (5, 3)]);
    }

    #[test]
    fn far_future_entries_survive_the_overflow_bucket() {
        let mut w = TimerWheel::new();
        let far = HORIZON_US * 3 + 17;
        w.push(far, 1, 0);
        w.push(3, 2, 0);
        w.push(far + 1, 3, 0);
        w.push(far, 4, 0);
        assert_eq!(drain(&mut w), vec![(3, 2), (far, 1), (far, 4), (far + 1, 3)]);
        assert_eq!(w.now(), far + 1);
    }

    #[test]
    fn matches_reference_heap_on_a_mixed_interleaving() {
        // Deterministic pseudo-random schedule/fire interleaving, spanning
        // all levels and the overflow bucket.
        let mut w = TimerWheel::new();
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut state = 0x1234_5678_9abc_def0u64;
        let step = |s: &mut u64| {
            *s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *s >> 33
        };
        let mut seq = 0u64;
        let mut now = 0u64;
        for round in 0..2_000 {
            let r = step(&mut state);
            if r % 3 != 0 || heap.is_empty() {
                // Bias delays so every level gets traffic.
                let exp = (r / 7) % 40;
                let delay = (step(&mut state) % 64) << exp.min(38);
                seq += 1;
                w.push(now + delay, seq, 0u32);
                heap.push(Reverse((now + delay, seq)));
            } else {
                let Reverse(expect) = heap.pop().unwrap();
                let got = w.pop().unwrap();
                assert_eq!((got.at, got.seq), expect, "round {round}");
                now = got.at;
            }
        }
        while let Some(Reverse(expect)) = heap.pop() {
            let got = w.pop().unwrap();
            assert_eq!((got.at, got.seq), expect);
        }
        assert!(w.pop().is_none());
    }
}

//! Event traces and their determinism fingerprint.
//!
//! Every state transition the engine makes is appended to a trace in
//! execution order. Because the event queue breaks time ties by insertion
//! sequence, the trace is a pure function of the simulator's inputs —
//! [`fingerprint`] collapses it to one comparable word, which is what the
//! end-to-end determinism assertions (same seed, different trainer-pool
//! widths ⇒ bit-identical traces) compare.

/// One engine transition. `job` is the caller-assigned [`crate::JobSpec`]
/// id; `stage` indexes the job's stage list; `attempt` counts transfer
/// attempts from 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A job entered the system.
    JobReleased {
        /// Simulated time (µs).
        t: u64,
        /// Job id.
        job: u64,
    },
    /// A transfer attempt was submitted to its link.
    TransferQueued {
        /// Simulated time (µs).
        t: u64,
        /// Job id.
        job: u64,
        /// Stage index within the job.
        stage: usize,
        /// Link index.
        link: usize,
        /// Attempt number (1-based).
        attempt: u32,
    },
    /// A transfer attempt started moving bytes (FIFO: service start;
    /// fair-share: flow join after propagation latency).
    TransferStarted {
        /// Simulated time (µs).
        t: u64,
        /// Job id.
        job: u64,
        /// Stage index within the job.
        stage: usize,
        /// Link index.
        link: usize,
        /// Attempt number (1-based).
        attempt: u32,
    },
    /// A transfer attempt delivered its last byte.
    TransferCompleted {
        /// Simulated time (µs).
        t: u64,
        /// Job id.
        job: u64,
        /// Stage index within the job.
        stage: usize,
        /// Link index.
        link: usize,
        /// Attempt number (1-based).
        attempt: u32,
    },
    /// A transfer attempt hit its timeout (in queue or in flight).
    TransferTimedOut {
        /// Simulated time (µs).
        t: u64,
        /// Job id.
        job: u64,
        /// Stage index within the job.
        stage: usize,
        /// Link index.
        link: usize,
        /// Attempt number (1-based).
        attempt: u32,
    },
    /// Retries are exhausted; the transfer (and its job) failed.
    TransferAbandoned {
        /// Simulated time (µs).
        t: u64,
        /// Job id.
        job: u64,
        /// Stage index within the job.
        stage: usize,
        /// Link index.
        link: usize,
        /// Attempts spent.
        attempts: u32,
    },
    /// A compute stage started.
    ComputeStarted {
        /// Simulated time (µs).
        t: u64,
        /// Job id.
        job: u64,
        /// Stage index within the job.
        stage: usize,
    },
    /// A compute stage finished.
    ComputeFinished {
        /// Simulated time (µs).
        t: u64,
        /// Job id.
        job: u64,
        /// Stage index within the job.
        stage: usize,
    },
    /// A job ran out of stages — it completed.
    JobCompleted {
        /// Simulated time (µs).
        t: u64,
        /// Job id.
        job: u64,
    },
    /// A reactive-mode timer fired (see
    /// [`crate::engine::SimControl::set_timer`]). Closed replays never
    /// produce this event, so their fingerprints are unchanged.
    TimerFired {
        /// Simulated time (µs).
        t: u64,
        /// Caller-chosen timer key.
        key: u64,
    },
}

impl TraceEvent {
    /// Packs the event into hashable words: a discriminant code followed
    /// by every field.
    fn words(&self) -> [u64; 6] {
        match *self {
            TraceEvent::JobReleased { t, job } => [0, t, job, 0, 0, 0],
            TraceEvent::TransferQueued { t, job, stage, link, attempt } => {
                [1, t, job, stage as u64, link as u64, attempt as u64]
            }
            TraceEvent::TransferStarted { t, job, stage, link, attempt } => {
                [2, t, job, stage as u64, link as u64, attempt as u64]
            }
            TraceEvent::TransferCompleted { t, job, stage, link, attempt } => {
                [3, t, job, stage as u64, link as u64, attempt as u64]
            }
            TraceEvent::TransferTimedOut { t, job, stage, link, attempt } => {
                [4, t, job, stage as u64, link as u64, attempt as u64]
            }
            TraceEvent::TransferAbandoned { t, job, stage, link, attempts } => {
                [5, t, job, stage as u64, link as u64, attempts as u64]
            }
            TraceEvent::ComputeStarted { t, job, stage } => [6, t, job, stage as u64, 0, 0],
            TraceEvent::ComputeFinished { t, job, stage } => [7, t, job, stage as u64, 0, 0],
            TraceEvent::JobCompleted { t, job } => [8, t, job, 0, 0, 0],
            TraceEvent::TimerFired { t, key } => [9, t, key, 0, 0, 0],
        }
    }

    /// The event's simulated timestamp.
    pub fn time(&self) -> u64 {
        self.words()[1]
    }
}

/// FNV-1a offset basis — the fingerprint of an empty trace.
pub(crate) const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds one event into a running FNV-1a hash. The engine streams every
/// transition through this, so fingerprints are available even when the
/// trace itself is not retained ([`crate::TraceLevel::Fingerprint`]).
pub(crate) fn extend(mut h: u64, event: &TraceEvent) -> u64 {
    for word in event.words() {
        for byte in word.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// FNV-1a over the packed trace: equal fingerprints ⇔ (with overwhelming
/// probability) bit-identical traces. Cheap enough to assert on every run.
pub fn fingerprint(trace: &[TraceEvent]) -> u64 {
    trace.iter().fold(FNV_BASIS, extend)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_separates_traces() {
        let a = vec![
            TraceEvent::JobReleased { t: 0, job: 1 },
            TraceEvent::JobCompleted { t: 5, job: 1 },
        ];
        let mut b = a.clone();
        assert_eq!(fingerprint(&a), fingerprint(&b));
        b[1] = TraceEvent::JobCompleted { t: 6, job: 1 };
        assert_ne!(fingerprint(&a), fingerprint(&b));
        assert_ne!(fingerprint(&a), fingerprint(&a[..1]));
        assert_ne!(fingerprint(&[]), fingerprint(&a));
    }

    #[test]
    fn events_are_timestamped() {
        let e = TraceEvent::TransferQueued { t: 42, job: 3, stage: 1, link: 0, attempt: 2 };
        assert_eq!(e.time(), 42);
    }
}

//! Link profiles, sharing disciplines and heterogeneous fleet link mixes.
//!
//! A [`LinkProfile`] is the static shape of one device↔cloud path
//! (propagation latency + bottleneck bandwidth); a [`LinkSpec`] adds the
//! queueing [`Discipline`] the simulator enforces when several transfers
//! contend for it. Fleets are heterogeneous: [`LinkMix`] assigns each
//! device a profile from a weighted wifi/WAN/cellular mix, seeded so the
//! assignment (including which devices are stragglers) is a pure function
//! of `(seed, device)`.

/// Splitmix64: a bijective avalanche mix, so nearby device ids receive
/// unrelated draws. This is the workspace's one copy of the
/// construction — `pelican_train::pool::user_seed` delegates here.
pub fn mix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` from a hash word.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Static shape of one network path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkProfile {
    /// Human-readable class for reports (`wifi`, `wan`, ...).
    pub name: &'static str,
    /// One-way propagation latency in microseconds.
    pub latency_us: u64,
    /// Bottleneck throughput in bytes per second.
    pub bytes_per_sec: f64,
}

impl LinkProfile {
    /// Campus WiFi: 8 ms, 100 Mbit/s.
    pub fn wifi() -> Self {
        Self { name: "wifi", latency_us: 8_000, bytes_per_sec: 100e6 / 8.0 }
    }

    /// Phone-to-cloud WAN: 40 ms, 25 Mbit/s.
    pub fn wan() -> Self {
        Self { name: "wan", latency_us: 40_000, bytes_per_sec: 25e6 / 8.0 }
    }

    /// Cellular uplink: 60 ms, 5 Mbit/s.
    pub fn cellular() -> Self {
        Self { name: "cellular", latency_us: 60_000, bytes_per_sec: 5e6 / 8.0 }
    }

    /// A serialized compute resource modeled as a link: zero propagation
    /// latency and exactly one byte per microsecond, so a FIFO transfer
    /// of `duration_us` bytes occupies the resource for exactly
    /// `duration_us` µs — and back-to-back occupants *queue* behind each
    /// other instead of overlapping, with the queue/service split
    /// falling out of the ordinary [`crate::StageReport`] accounting.
    /// This is how the serving tier models a registry shard's fused
    /// batch compute on the simulation's virtual clock.
    pub fn compute_resource(name: &'static str) -> Self {
        Self { name, latency_us: 0, bytes_per_sec: 1e6 }
    }

    /// Uncontended time to move `bytes` across this link, in microseconds
    /// (latency plus serialization) — the empty-link FIFO bound every
    /// discipline is compared against.
    pub fn transfer_us(&self, bytes: u64) -> u64 {
        self.latency_us + (bytes as f64 / self.bytes_per_sec * 1e6).ceil() as u64
    }

    /// The same path degraded by a straggling device: bandwidth divided
    /// and latency multiplied by `factor`.
    ///
    /// # Panics
    ///
    /// Panics unless `factor >= 1`.
    pub fn slowed(&self, factor: f64) -> Self {
        assert!(factor >= 1.0, "slowdown factor must be >= 1, got {factor}");
        Self {
            name: self.name,
            latency_us: (self.latency_us as f64 * factor).ceil() as u64,
            bytes_per_sec: self.bytes_per_sec / factor,
        }
    }
}

/// How concurrent transfers share a link's bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Discipline {
    /// Store-and-forward: one transfer at a time at full bandwidth,
    /// arrival order.
    Fifo,
    /// Processor sharing: all in-flight transfers drain at
    /// `bandwidth / n`, the fluid limit of per-flow fair queueing.
    FairShare,
}

/// A link instance the simulator schedules transfers on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Latency/bandwidth shape.
    pub profile: LinkProfile,
    /// Bandwidth-sharing discipline under contention.
    pub discipline: Discipline,
}

impl LinkSpec {
    /// A FIFO link with the given profile.
    pub fn fifo(profile: LinkProfile) -> Self {
        Self { profile, discipline: Discipline::Fifo }
    }

    /// A fair-share link with the given profile.
    pub fn fair(profile: LinkProfile) -> Self {
        Self { profile, discipline: Discipline::FairShare }
    }
}

/// Straggler injection: a seeded fraction of devices get `slowdown`-times
/// worse links (bandwidth divided, latency multiplied).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StragglerConfig {
    /// Fraction of devices degraded, in `[0, 1]`.
    pub fraction: f64,
    /// Degradation factor (`>= 1`; 1 disables).
    pub slowdown: f64,
}

impl StragglerConfig {
    /// No stragglers.
    pub fn none() -> Self {
        Self { fraction: 0.0, slowdown: 1.0 }
    }
}

impl Default for StragglerConfig {
    fn default() -> Self {
        Self::none()
    }
}

/// One device's assigned path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceLink {
    /// The (possibly straggler-degraded) profile.
    pub profile: LinkProfile,
    /// Whether straggler injection degraded this device.
    pub straggler: bool,
}

/// A weighted wifi/WAN/cellular mix with optional straggler injection.
///
/// Assignment is a pure function of `(seed, device)`: the same fleet seed
/// always deals the same links, independent of iteration order or host.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkMix {
    /// Relative weight of WiFi devices.
    pub wifi: f64,
    /// Relative weight of WAN devices.
    pub wan: f64,
    /// Relative weight of cellular devices.
    pub cellular: f64,
    /// Straggler injection applied after the profile draw.
    pub straggler: StragglerConfig,
}

impl LinkMix {
    /// Every device on campus WiFi.
    pub fn all_wifi() -> Self {
        Self { wifi: 1.0, wan: 0.0, cellular: 0.0, straggler: StragglerConfig::none() }
    }

    /// A campus-shaped mix: mostly WiFi, some WAN, a cellular tail.
    pub fn campus() -> Self {
        Self { wifi: 0.6, wan: 0.25, cellular: 0.15, straggler: StragglerConfig::none() }
    }

    /// A commuter-shaped mix dominated by cellular links.
    pub fn cellular_heavy() -> Self {
        Self { wifi: 0.15, wan: 0.25, cellular: 0.6, straggler: StragglerConfig::none() }
    }

    /// Replaces the straggler configuration.
    pub fn with_stragglers(mut self, straggler: StragglerConfig) -> Self {
        self.straggler = straggler;
        self
    }

    /// Deals `device`'s link for fleet `seed`.
    ///
    /// # Panics
    ///
    /// Panics if all three weights are zero.
    pub fn assign(&self, seed: u64, device: u64) -> DeviceLink {
        let total = self.wifi + self.wan + self.cellular;
        assert!(total > 0.0, "link mix needs at least one positive weight");
        let h = mix64(seed ^ device.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let u = unit(h) * total;
        let profile = if u < self.wifi {
            LinkProfile::wifi()
        } else if u < self.wifi + self.wan {
            LinkProfile::wan()
        } else {
            LinkProfile::cellular()
        };
        let straggler =
            self.straggler.slowdown > 1.0 && unit(mix64(h ^ 0x5747_4741)) < self.straggler.fraction;
        let profile = if straggler { profile.slowed(self.straggler.slowdown) } else { profile };
        DeviceLink { profile, straggler }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_with_bytes_and_profile() {
        let wifi = LinkProfile::wifi();
        assert!(wifi.transfer_us(10_000_000) > wifi.transfer_us(1_000));
        assert!(wifi.transfer_us(0) == wifi.latency_us);
        let bytes = 5_000_000;
        assert!(LinkProfile::wan().transfer_us(bytes) > wifi.transfer_us(bytes));
        assert!(LinkProfile::cellular().transfer_us(bytes) > LinkProfile::wan().transfer_us(bytes));
    }

    #[test]
    fn slowed_degrades_both_axes() {
        let slow = LinkProfile::wifi().slowed(4.0);
        assert_eq!(slow.latency_us, 32_000);
        assert!(slow.bytes_per_sec < LinkProfile::wifi().bytes_per_sec);
        assert!(slow.transfer_us(1_000_000) > LinkProfile::wifi().transfer_us(1_000_000));
    }

    #[test]
    fn assignment_is_a_pure_function_of_seed_and_device() {
        let mix =
            LinkMix::campus().with_stragglers(StragglerConfig { fraction: 0.2, slowdown: 8.0 });
        for device in 0..50u64 {
            assert_eq!(mix.assign(7, device), mix.assign(7, device));
        }
        let a: Vec<DeviceLink> = (0..50).map(|d| mix.assign(7, d)).collect();
        let b: Vec<DeviceLink> = (0..50).map(|d| mix.assign(8, d)).collect();
        assert_ne!(a, b, "different seeds deal different fleets");
    }

    #[test]
    fn mix_weights_shape_the_fleet() {
        let counts = |mix: LinkMix| {
            let mut wifi = 0;
            let mut cell = 0;
            for d in 0..400u64 {
                match mix.assign(3, d).profile.name {
                    "wifi" => wifi += 1,
                    "cellular" => cell += 1,
                    _ => {}
                }
            }
            (wifi, cell)
        };
        let (wifi, cell) = counts(LinkMix::campus());
        assert!(wifi > cell, "campus mix is wifi-dominated: {wifi} vs {cell}");
        let (wifi, cell) = counts(LinkMix::cellular_heavy());
        assert!(cell > wifi, "cellular-heavy mix flips it: {wifi} vs {cell}");
        assert_eq!(counts(LinkMix::all_wifi()), (400, 0));
    }

    #[test]
    fn stragglers_appear_at_roughly_the_configured_fraction() {
        let mix =
            LinkMix::all_wifi().with_stragglers(StragglerConfig { fraction: 0.25, slowdown: 10.0 });
        let stragglers = (0..1000u64).filter(|&d| mix.assign(11, d).straggler).count();
        assert!((150..350).contains(&stragglers), "got {stragglers} stragglers in 1000");
        let none = LinkMix::all_wifi();
        assert!((0..1000u64).all(|d| !none.assign(11, d).straggler));
    }
}

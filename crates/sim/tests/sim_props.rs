//! Property tests for the discrete-event engine's core contracts:
//!
//! * **Conservation** — every started transfer attempt resolves exactly
//!   once (completed or timed out), and every transfer stage a job enters
//!   ends in exactly one terminal event (completed or abandoned), for
//!   arbitrary link tables, job shapes, timeouts and retry policies.
//! * **Determinism** — the event trace is a pure function of the seed:
//!   same seed ⇒ bit-identical traces and fingerprints, different seeds
//!   ⇒ (generically) different fleets.
//! * **Fair-share lower bound** — processor sharing can only slow a
//!   transfer down: no completed transfer beats the empty-link FIFO time
//!   (latency + bytes/bandwidth), under any contention.

use std::collections::HashMap;

use proptest::prelude::*;

use pelican_sim::{
    Discipline, JobSpec, JobStatus, LinkMix, LinkSpec, Passive, RetryPolicy, SimOutcome, Simulator,
    Stage, StragglerConfig, TraceEvent, TransferPolicy,
};

/// Builds a deterministic random fleet workload from one seed word.
/// Every quantity is derived with `mix64`, so the workload is a pure
/// function of `seed` — the property the determinism test pins down.
fn workload(seed: u64, links: usize, jobs: usize) -> (Simulator, Vec<JobSpec>) {
    let mix = LinkMix::campus().with_stragglers(StragglerConfig { fraction: 0.2, slowdown: 6.0 });
    let link_table: Vec<LinkSpec> = (0..links)
        .map(|l| {
            let dealt = mix.assign(seed, l as u64);
            if pelican_sim::mix64(seed ^ l as u64).is_multiple_of(2) {
                LinkSpec::fifo(dealt.profile)
            } else {
                LinkSpec::fair(dealt.profile)
            }
        })
        .collect();
    let specs: Vec<JobSpec> = (0..jobs)
        .map(|j| {
            let h = pelican_sim::mix64(seed.wrapping_add(0x10B ^ j as u64));
            let n_stages = 1 + (h % 3) as usize;
            let stages = (0..n_stages)
                .map(|s| {
                    let hs = pelican_sim::mix64(h ^ (s as u64) << 7);
                    if hs.is_multiple_of(3) {
                        Stage::Compute { label: "compute", duration_us: hs % 50_000 }
                    } else {
                        let timeout_us =
                            if hs.is_multiple_of(5) { Some(5_000 + hs % 80_000) } else { None };
                        let retry = if hs % 7 < 3 {
                            RetryPolicy::none()
                        } else {
                            RetryPolicy::exponential(1 + (hs % 4) as u32, 4_000, 2.0)
                        };
                        Stage::Transfer {
                            label: "transfer",
                            link: (hs % link_table.len() as u64) as usize,
                            bytes: hs % 2_000_000,
                            policy: TransferPolicy { timeout_us, retry },
                        }
                    }
                })
                .collect();
            JobSpec { id: j as u64, release_us: h % 200_000, stages }
        })
        .collect();
    (Simulator::builder().links(link_table).build(), specs)
}

/// Per-attempt resolution counts keyed by `(job, stage, attempt)`.
fn attempt_resolutions(outcome: &SimOutcome) -> HashMap<(u64, usize, u32), (usize, usize)> {
    let mut seen: HashMap<(u64, usize, u32), (usize, usize)> = HashMap::new();
    for event in &outcome.trace {
        match *event {
            TraceEvent::TransferQueued { job, stage, attempt, .. } => {
                seen.entry((job, stage, attempt)).or_insert((0, 0)).0 += 1;
            }
            TraceEvent::TransferCompleted { job, stage, attempt, .. }
            | TraceEvent::TransferTimedOut { job, stage, attempt, .. } => {
                seen.entry((job, stage, attempt)).or_insert((0, 0)).1 += 1;
            }
            _ => {}
        }
    }
    seen
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_started_transfer_resolves_exactly_once(
        seed in 0u64..1_000_000,
        links in 1usize..4,
        jobs in 1usize..14,
    ) {
        let (sim, specs) = workload(seed, links, jobs);
        let outcome = sim.run(&specs, &mut Passive);

        // Attempt-level conservation: each queued attempt resolves
        // (completes or times out) exactly once, and no resolution
        // appears for an attempt that never started.
        for ((job, stage, attempt), (queued, resolved)) in attempt_resolutions(&outcome) {
            prop_assert_eq!(queued, 1, "attempt ({job},{stage},{attempt}) queued {queued} times");
            prop_assert_eq!(
                resolved, 1,
                "attempt ({job},{stage},{attempt}) resolved {resolved} times"
            );
        }

        // Job-level conservation: every job reaches exactly one terminal
        // state, failed jobs end on a transfer stage with an abandonment
        // event, and completed jobs completed every spec'd stage.
        let completions = outcome
            .trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::JobCompleted { .. }))
            .count();
        let abandonments = outcome
            .trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::TransferAbandoned { .. }))
            .count();
        prop_assert_eq!(completions + abandonments, specs.len());
        prop_assert_eq!(abandonments, outcome.timed_out());
        for (job, spec) in outcome.jobs().zip(&specs) {
            match job.status() {
                JobStatus::Completed => prop_assert_eq!(job.stages().len(), spec.stages.len()),
                JobStatus::TimedOut { stage } => {
                    prop_assert_eq!(job.stages().len(), stage + 1);
                    prop_assert!(matches!(spec.stages[stage], Stage::Transfer { .. }));
                }
            }
        }
    }

    #[test]
    fn event_ordering_is_a_pure_function_of_the_seed(
        seed in 0u64..1_000_000,
        links in 1usize..4,
        jobs in 1usize..10,
    ) {
        let (sim_a, specs_a) = workload(seed, links, jobs);
        let (sim_b, specs_b) = workload(seed, links, jobs);
        let a = sim_a.run(&specs_a, &mut Passive);
        let b = sim_b.run(&specs_b, &mut Passive);
        prop_assert_eq!(&a.trace, &b.trace, "same seed must replay bit-identically");
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
        prop_assert_eq!(&a, &b);

        // And the trace is totally ordered in time (the virtual clock
        // never runs backwards).
        for pair in a.trace.windows(2) {
            prop_assert!(pair[0].time() <= pair[1].time());
        }

        let (sim_c, specs_c) = workload(seed ^ 0x5EED_CAFE, links, jobs);
        let c = sim_c.run(&specs_c, &mut Passive);
        prop_assert!(
            c.trace != a.trace || c == a,
            "a different seed may only coincide if outcomes coincide"
        );
    }

    #[test]
    fn fair_share_never_beats_the_empty_link_fifo_bound(
        seed in 0u64..1_000_000,
        jobs in 1usize..12,
    ) {
        // All transfers share one link. Under both disciplines every
        // completed transfer stage must take at least its uncontended
        // ideal (latency + serialization) — exactly what an empty-link
        // FIFO would charge — no matter how many flows contend.
        let (_, specs) = workload(seed, 1, jobs);
        let profile = LinkMix::all_wifi().assign(seed, 0).profile;
        for discipline in [Discipline::FairShare, Discipline::Fifo] {
            let sim = Simulator::builder().links(vec![LinkSpec { profile, discipline }]).build();
            let outcome = sim.run(&specs, &mut Passive);
            for job in outcome.completed() {
                for stage in job.stages() {
                    prop_assert!(
                        stage.span_us() >= stage.ideal_us,
                        "{:?} finished a {} stage in {} µs, below its ideal {} µs",
                        discipline,
                        stage.label,
                        stage.span_us(),
                        stage.ideal_us
                    );
                }
            }
        }
    }
}

//! Fingerprint invariance of sharded execution at fleet scale: a
//! 10k-device passive run must produce bit-identical trace fingerprints
//! (and job outcomes) across 1-, 2- and 8-shard simulators — the same
//! contract the trainer-pool width invariance pins for the training
//! pipeline, here for the sim core itself.

use pelican_sim::{
    completion_percentile, JobSpec, LinkMix, LinkProfile, LinkSpec, Passive, Simulator, Stage,
    TraceLevel, TransferPolicy,
};

const DEVICES: usize = 10_000;
const GROUP: usize = 64;

/// A fleet of `devices` endpoints: each device owns a FIFO last-hop
/// link and shares a fair-share uplink with its group, giving
/// `devices / GROUP` independent link components — plenty for 8 shards.
fn fleet(devices: usize) -> (Vec<LinkSpec>, Vec<JobSpec>) {
    let groups = devices.div_ceil(GROUP);
    let mix = LinkMix::campus();
    let mut links: Vec<LinkSpec> =
        (0..devices).map(|d| LinkSpec::fifo(mix.assign(0xF1EE7, d as u64).profile)).collect();
    links.extend((0..groups).map(|_| LinkSpec::fair(LinkProfile::wan())));
    let specs = (0..devices)
        .map(|d| {
            let uplink = devices + d / GROUP;
            JobSpec {
                id: d as u64,
                release_us: (d as u64 % 997) * 250,
                stages: vec![
                    Stage::Transfer {
                        label: "download",
                        link: uplink,
                        bytes: 120_000,
                        policy: TransferPolicy::default(),
                    },
                    Stage::Compute { label: "train", duration_us: 4_000 + (d as u64 % 37) * 300 },
                    Stage::Transfer {
                        label: "upload",
                        link: d,
                        bytes: 40_000 + (d as u64 % 11) * 2_000,
                        policy: TransferPolicy::default(),
                    },
                ],
            }
        })
        .collect();
    (links, specs)
}

#[test]
fn fingerprints_are_invariant_across_1_2_and_8_shards_at_10k_devices() {
    let (links, specs) = fleet(DEVICES);
    let mut outcomes = Vec::new();
    for shards in [1usize, 2, 8] {
        let sim = Simulator::builder()
            .links(links.clone())
            .shards(shards)
            .trace(TraceLevel::Fingerprint)
            .build();
        outcomes.push((shards, sim.run(&specs, &mut Passive)));
    }
    let (_, baseline) = &outcomes[0];
    assert_eq!(baseline.job_count(), DEVICES);
    assert_eq!(baseline.timed_out(), 0);
    assert!(completion_percentile(baseline, 0.95) > 0);
    for (shards, outcome) in &outcomes[1..] {
        assert_eq!(
            outcome.fingerprint(),
            baseline.fingerprint(),
            "{shards}-shard fingerprint diverged from 1-shard"
        );
        assert_eq!(outcome.events(), baseline.events(), "{shards}-shard event count diverged");
        assert_eq!(outcome.job_count(), baseline.job_count());
        for (a, b) in outcome.jobs().zip(baseline.jobs()) {
            assert_eq!(a.id(), b.id());
            assert_eq!(a.end_us(), b.end_us());
            assert_eq!(a.status(), b.status());
            assert_eq!(a.stages(), b.stages());
        }
    }
}

#[test]
fn sharded_full_traces_match_event_for_event() {
    // Smaller population, full trace retention: the merged trace (not
    // just its hash) must equal the sequential one.
    let (links, specs) = fleet(512);
    let run = |shards| {
        Simulator::builder().links(links.clone()).shards(shards).build().run(&specs, &mut Passive)
    };
    let seq = run(1);
    let two = run(2);
    let eight = run(8);
    assert_eq!(seq.trace, two.trace);
    assert_eq!(seq.trace, eight.trace);
    assert_eq!(seq.fingerprint(), eight.fingerprint());
}

#[test]
fn shard_counts_beyond_components_still_replay_exactly() {
    // One shared link couples every job into a single component: 8
    // shards degenerate to 1 working shard + 7 idle ones, and the
    // outcome must not notice.
    let links = vec![LinkSpec::fair(LinkProfile::wifi())];
    let specs: Vec<JobSpec> = (0..200)
        .map(|i| JobSpec {
            id: i,
            release_us: i * 111,
            stages: vec![Stage::Transfer {
                label: "up",
                link: 0,
                bytes: 10_000 + i * 97,
                policy: TransferPolicy::default(),
            }],
        })
        .collect();
    let run = |shards| {
        Simulator::builder().links(links.clone()).shards(shards).build().run(&specs, &mut Passive)
    };
    let seq = run(1);
    let wide = run(8);
    assert_eq!(seq.trace, wide.trace);
    assert_eq!(seq.fingerprint(), wide.fingerprint());
}

//! Property test for the timer wheel: under any schedule/fire
//! interleaving, pops match the old `BinaryHeap<Reverse<(time, seq)>>`
//! ordering exactly — including `(time, seq)` ties — on random event
//! sets spanning every wheel level and the far-future overflow bucket.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use proptest::prelude::*;

use pelican_sim::TimerWheel;

/// One scripted action: schedule an event `delay` after the current
/// virtual time (possibly 0, possibly beyond the wheel horizon), or
/// fire the next one.
#[derive(Debug, Clone)]
enum Op {
    Push { delay: u64 },
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Selector-weighted mix: short delays hammer level 0, medium delays
    // the middle levels, shifted delays the top levels and the overflow
    // bucket, and the rest of the weight fires.
    (0u8..12, 0u64..1 << 20, 0u32..40).prop_map(|(sel, raw, shift)| match sel {
        0..=2 => Op::Push { delay: raw % 64 },
        3..=5 => Op::Push { delay: raw },
        6 | 7 => Op::Push { delay: (raw % 64) << shift },
        _ => Op::Pop,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn wheel_pops_in_exact_heap_order(ops in prop::collection::vec(op_strategy(), 1usize..400)) {
        let mut wheel: TimerWheel<()> = TimerWheel::new();
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        for op in ops {
            match op {
                Op::Push { delay } => {
                    seq += 1;
                    wheel.push(now + delay, seq, ());
                    heap.push(Reverse((now + delay, seq)));
                }
                Op::Pop => {
                    let expect = heap.pop();
                    let got = wheel.pop().map(|e| (e.at, e.seq));
                    prop_assert_eq!(got, expect.map(|Reverse(p)| p));
                    if let Some((at, _)) = got {
                        now = at;
                        prop_assert_eq!(wheel.now(), at);
                    }
                }
            }
            prop_assert_eq!(wheel.len(), heap.len());
        }
        // Drain what's left: the tail must still agree element-for-element.
        while let Some(Reverse(expect)) = heap.pop() {
            let got = wheel.pop().expect("wheel and heap hold the same entries");
            prop_assert_eq!((got.at, got.seq), expect);
        }
        prop_assert!(wheel.is_empty());
        prop_assert!(wheel.pop().is_none());
    }

    #[test]
    fn same_instant_ties_resolve_by_sequence(
        base in 0u64..1 << 30,
        batch in 2usize..24,
    ) {
        // All entries at one deadline, pushed in shuffled-seq order via
        // interleaved earlier/later seqs: pops must come back sorted.
        let mut wheel: TimerWheel<usize> = TimerWheel::new();
        for i in 0..batch {
            // Zig-zag insertion order, monotone seqs: seq i, deadline base.
            wheel.push(base, i as u64 + 1, i);
        }
        for i in 0..batch {
            let e = wheel.pop().expect("batch entry");
            prop_assert_eq!((e.at, e.seq, e.item), (base, i as u64 + 1, i));
        }
        prop_assert!(wheel.is_empty());
    }
}

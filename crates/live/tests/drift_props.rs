//! Property tests for the drift trigger: the retrain schedule is a pure
//! function of the seeded event stream — same samples in, same marks
//! out, regardless of how often anyone looks.

use proptest::prelude::*;

use pelican_live::{DriftConfig, DriftDetector, DriftMetric};
use pelican_nn::{Sample, SequenceModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

const DIM: usize = 4;
const LOCATIONS: usize = 5;

fn model(seed: u64) -> SequenceModel {
    let mut rng = StdRng::seed_from_u64(seed);
    SequenceModel::single_lstm(DIM, 6, LOCATIONS, 0.0, &mut rng)
}

/// A synthetic event stream: each `(lane, target)` pair becomes a
/// deterministic two-step sample.
fn sample(lane: u8, target: u8) -> Sample {
    let fill = f32::from(lane) * 0.07 - 0.5;
    Sample {
        xs: vec![vec![fill; DIM], vec![fill + 0.11; DIM]],
        target: usize::from(target) % LOCATIONS,
    }
}

fn config_strategy() -> impl Strategy<Value = DriftConfig> {
    // Selector-driven metric mix (the vendored proptest has no
    // `prop_oneof!`): even knobs score loss, odd knobs agreement.
    (1usize..5, 1usize..8, 0u8..4, 1usize..3, 0u64..120).prop_map(
        |(min_new_samples, window, selector, k, knob)| {
            let metric = if selector % 2 == 0 {
                DriftMetric::Loss { max_loss: knob as f64 / 30.0 }
            } else {
                DriftMetric::TopKAgreement { k, min_agreement: knob as f64 / 100.0 }
            };
            DriftConfig { metric, min_new_samples, window }
        },
    )
}

/// The full drift schedule of a stream: for every prefix, whether the
/// trigger fires (draining on fire, exactly like the live loop does).
fn schedule(config: DriftConfig, stream: &[(u8, u8)], model: &SequenceModel) -> Vec<usize> {
    let mut detector = DriftDetector::new(config);
    let mut marks = Vec::new();
    for (i, &(lane, target)) in stream.iter().enumerate() {
        detector.observe(sample(lane, target));
        if detector.evaluate(model).is_some_and(|s| s.drifted) {
            marks.push(i);
            detector.drain();
        }
    }
    marks
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn same_seeded_stream_same_retrain_schedule(
        config in config_strategy(),
        stream in prop::collection::vec((0u8..16, 0u8..8), 1usize..80),
        seed in 0u64..32,
    ) {
        let m = model(seed);
        let a = schedule(config, &stream, &m);
        let b = schedule(config, &stream, &m);
        prop_assert_eq!(a, b, "the schedule is a pure function of the stream");
    }

    #[test]
    fn evaluation_cadence_never_changes_the_verdicts(
        config in config_strategy(),
        stream in prop::collection::vec((0u8..16, 0u8..8), 1usize..60),
        probe_mask in prop::collection::vec(0u8..2, 60usize..61),
        seed in 0u64..32,
    ) {
        // A monitor that only *sometimes* looks must see exactly the
        // verdict a continuous monitor saw at the same prefix — drift
        // state depends on observations, never on evaluations.
        let m = model(seed);
        let mut continuous = DriftDetector::new(config);
        let mut lazy = DriftDetector::new(config);
        for (i, &(lane, target)) in stream.iter().enumerate() {
            continuous.observe(sample(lane, target));
            lazy.observe(sample(lane, target));
            let reference = continuous.evaluate(&m);
            if probe_mask[i % probe_mask.len()] == 1 {
                prop_assert_eq!(lazy.evaluate(&m), reference);
            }
        }
        prop_assert_eq!(continuous.fresh_count(), lazy.fresh_count());
    }

    #[test]
    fn drain_starts_an_independent_epoch(
        config in config_strategy(),
        head in prop::collection::vec((0u8..16, 0u8..8), 1usize..30),
        tail in prop::collection::vec((0u8..16, 0u8..8), 1usize..30),
        seed in 0u64..32,
    ) {
        // After a drain, the detector's future is determined by the new
        // samples alone: a drained veteran and a fresh detector agree on
        // the tail stream observation-for-observation.
        let m = model(seed);
        let mut veteran = DriftDetector::new(config);
        for &(lane, target) in &head {
            veteran.observe(sample(lane, target));
        }
        veteran.drain();
        let mut fresh = DriftDetector::new(config);
        for &(lane, target) in &tail {
            veteran.observe(sample(lane, target));
            fresh.observe(sample(lane, target));
            prop_assert_eq!(veteran.evaluate(&m), fresh.evaluate(&m));
        }
    }
}

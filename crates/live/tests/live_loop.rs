//! The live loop's two pinned invariants: a quiescent run reduces
//! bit-identically to today's one-shot pipeline plus serving pass, and a
//! drifting run is deterministic across trainer-pool widths.

use std::ops::Range;
use std::sync::Arc;

use pelican::platform::ComputeTier;
use pelican::PersonalizationConfig;
use pelican_live::{bootstrap_jobs, live_stream, run_live, DriftConfig, DriftMetric, LiveConfig};
use pelican_mobility::{CampusConfig, DatasetBuilder, MobilityDataset, Scale, SpatialLevel};
use pelican_nn::{SequenceModel, TrainConfig};
use pelican_serve::{
    simulate_serving, RegistryConfig, SchedulerConfig, ShardedRegistry, SimServeConfig,
};
use pelican_store::{EnvelopeStore, MemBackend, StoreConfig};
use pelican_train::{run_pipeline, AuditConfig, PipelineConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SHARDS: usize = 2;

fn tiny_setting() -> (MobilityDataset, SequenceModel, Range<usize>) {
    let dataset =
        DatasetBuilder::new(CampusConfig::for_scale(Scale::Tiny), 13).build(SpatialLevel::Building);
    let mut rng = StdRng::seed_from_u64(13);
    let general =
        SequenceModel::general_lstm(dataset.space.dim(), 12, dataset.n_locations(), 0.1, &mut rng);
    let n = dataset.users.len();
    (dataset, general, (n - 3)..n)
}

fn store_backed_registry(general: &SequenceModel) -> ShardedRegistry {
    let store = EnvelopeStore::open(
        Arc::new(MemBackend::new()),
        StoreConfig { shards: SHARDS, ..StoreConfig::default() },
    )
    .expect("open empty store");
    ShardedRegistry::with_store(
        general.clone(),
        RegistryConfig { shards: SHARDS, hot_capacity: 8 },
        Arc::new(store),
    )
}

fn fast_config(workers: usize, metric: DriftMetric) -> LiveConfig {
    LiveConfig {
        pipeline: PipelineConfig {
            workers,
            personalization: PersonalizationConfig {
                train: TrainConfig { epochs: 2, ..TrainConfig::default() },
                hidden_dim: 12,
                ..PersonalizationConfig::default()
            },
            audit: AuditConfig { max_instances: 3, ..AuditConfig::default() },
            ..PipelineConfig::default()
        },
        serve: SimServeConfig {
            scheduler: SchedulerConfig { max_batch: 4, max_delay_us: 900 },
            tier: ComputeTier::Cloud,
            network: None,
        },
        drift: DriftConfig { metric, min_new_samples: 4, window: 6 },
        us_per_minute: 1_000,
        bootstrap_minutes: 7 * 24 * 60,
        horizon_minutes: 14 * 24 * 60,
        train_fraction: 0.8,
        round_interval_us: 200_000,
        rollback_tolerance: 0.5,
    }
}

/// A trigger that can never fire: finite loss never exceeds +inf.
fn quiescent() -> DriftMetric {
    DriftMetric::Loss { max_loss: f64::INFINITY }
}

/// A trigger that always fires once enough samples accumulate:
/// agreement never reaches 1.01.
fn eager() -> DriftMetric {
    DriftMetric::TopKAgreement { k: 1, min_agreement: 1.01 }
}

#[test]
fn quiescent_loop_reduces_to_the_one_shot_pipeline() {
    let (dataset, general, users) = tiny_setting();
    let config = fast_config(2, quiescent());

    let live_registry = store_backed_registry(&general);
    let live =
        run_live(&dataset, users.clone(), &live_registry, &general, &config).expect("live run");

    assert!(live.retrains.is_empty(), "an impossible trigger schedules nothing");
    assert_eq!(live.drift_marks, 0);
    assert_eq!(live.reaudit.audits, 0);
    assert_eq!(live.pending_at_end, 0);
    assert!(!live.serve.served.is_empty(), "queries flowed regardless");

    // Reference: the unmodified one-shot pipeline over the same
    // bootstrap cohort, then the plain serving pass over the same
    // stream.
    let reference_registry = store_backed_registry(&general);
    let jobs = bootstrap_jobs(&dataset, users.clone(), &config);
    assert!(!jobs.is_empty());
    let report =
        run_pipeline(config.pipeline.clone(), &general, &dataset.space, &jobs, &reference_registry);
    assert_eq!(report.outcomes.len(), live.bootstrap.outcomes.len());
    let stream = live_stream(&dataset, users.clone(), &config);
    let serve = simulate_serving(&reference_registry, &stream.requests, &config.serve)
        .expect("envelopes decode");

    // Bit-identical serving: same unified trace fingerprint.
    assert_eq!(live.serve.fingerprint(), serve.fingerprint());
    assert_eq!(live.serve.compositions(), serve.compositions());

    // Bit-identical publications: every user's durable envelope bytes
    // match, and nothing beyond the bootstrap was ever written.
    let live_store = live_registry.store().expect("store-backed").clone();
    let reference_store = reference_registry.store().expect("store-backed").clone();
    assert_eq!(live_store.max_version(), reference_store.max_version());
    for job in &jobs {
        let a = live_store.fetch_latest(job.user_id as u64).unwrap().expect("published");
        let b = reference_store.fetch_latest(job.user_id as u64).unwrap().expect("published");
        assert_eq!(a.as_bytes(), b.as_bytes(), "user {} envelope differs", job.user_id);
        assert_eq!(live_store.versions(job.user_id as u64).len(), 1);
    }
}

#[test]
fn lockstep_cohorts_leave_the_publication_schedule_untouched() {
    // The dispatch-order contract, pinned end-to-end: switching the
    // retrain rounds to lockstep cohort dispatch (any cohort size, any
    // pool width) must not move a single publication instant, envelope
    // byte or gate verdict on the virtual clock.
    let (dataset, general, users) = tiny_setting();
    let run_with = |workers: usize, cohort: usize| {
        let registry = store_backed_registry(&general);
        let mut config = fast_config(workers, eager());
        config.pipeline.cohort = cohort;
        let outcome =
            run_live(&dataset, users.clone(), &registry, &general, &config).expect("live run");
        let envelopes: Vec<Option<Vec<u8>>> = users
            .clone()
            .map(|u| {
                let store = registry.store().unwrap();
                store.fetch_latest(u as u64).unwrap().map(|e| e.as_bytes().to_vec())
            })
            .collect();
        (outcome, envelopes)
    };

    let (baseline, baseline_envelopes) = run_with(1, 0);
    assert!(!baseline.retrains.is_empty(), "an eager trigger must re-train");
    for (workers, cohort) in [(1, 8), (2, 2), (8, 8)] {
        let (lockstep, envelopes) = run_with(workers, cohort);
        assert_eq!(
            baseline.fingerprint(),
            lockstep.fingerprint(),
            "publication schedule must not depend on cohort size \
             (workers {workers}, cohort {cohort})"
        );
        assert_eq!(baseline_envelopes, envelopes, "durable envelope bytes diverged");
        assert_eq!(baseline.retrains.len(), lockstep.retrains.len());
        for (a, b) in baseline.retrains.iter().zip(&lockstep.retrains) {
            assert_eq!(a.user_id, b.user_id);
            assert_eq!(a.publish_us, b.publish_us, "publication instant moved");
            assert_eq!(a.envelope_hash, b.envelope_hash);
            assert_eq!(a.gate, b.gate);
            assert_eq!(a.train_simulated_us, b.train_simulated_us);
        }
    }
}

#[test]
fn drifting_loop_is_width_invariant_and_reaudits_for_free() {
    let (dataset, general, users) = tiny_setting();

    let narrow_registry = store_backed_registry(&general);
    let narrow =
        run_live(&dataset, users.clone(), &narrow_registry, &general, &fast_config(1, eager()))
            .expect("1-worker run");
    let wide_registry = store_backed_registry(&general);
    let wide =
        run_live(&dataset, users.clone(), &wide_registry, &general, &fast_config(2, eager()))
            .expect("2-worker run");

    assert!(!narrow.retrains.is_empty(), "an eager trigger must re-train");
    assert_eq!(
        narrow.fingerprint(),
        wide.fingerprint(),
        "publication schedule must not depend on pool width"
    );
    assert_eq!(narrow.retrains.len(), wide.retrains.len());
    for (a, b) in narrow.retrains.iter().zip(&wide.retrains) {
        assert_eq!(a.user_id, b.user_id);
        assert_eq!(a.publish_us, b.publish_us);
        assert_eq!(a.envelope_hash, b.envelope_hash);
        assert_eq!(a.gate, b.gate);
    }
    // Durable histories agree byte-for-byte per user.
    let narrow_store = narrow_registry.store().unwrap().clone();
    let wide_store = wide_registry.store().unwrap().clone();
    for u in users {
        let a = narrow_store.fetch_latest(u as u64).unwrap();
        let b = wide_store.fetch_latest(u as u64).unwrap();
        assert_eq!(
            a.as_ref().map(|e| e.as_bytes().to_vec()),
            b.as_ref().map(|e| e.as_bytes().to_vec())
        );
    }

    // Every post-round sweep re-audited unchanged candidates from their
    // warm caches: full attack coverage, zero forward passes.
    assert!(narrow.reaudit.audits > 0, "rounds must trigger re-audit sweeps");
    assert_eq!(narrow.reaudit.misses, 0, "unchanged candidates pay zero forward passes");
    assert!(narrow.reaudit.hits > 0);

    // Retrain latency/staleness live on the virtual clock.
    for r in &narrow.retrains {
        assert!(r.publish_us >= r.round_us && r.round_us >= r.detect_us);
        assert!(r.train_simulated_us > 0);
    }
}

//! The personalize-while-serve loop on one virtual clock.
//!
//! [`run_live`] composes four existing subsystems into a single reactive
//! [`Workload`] on the simulator's event heap:
//!
//! 1. **Bootstrap** — the unmodified one-shot pipeline
//!    ([`FleetTrainer::run`]) personalizes every user on their enrollment
//!    window and publishes durably through the registry's write-ahead
//!    store; each user's audit fills a warm [`LogitCache`].
//! 2. **Serve** — post-enrollment sessions from the mobility generator
//!    become query arrivals ([`MobilityTraffic`]) into the sim-driven
//!    batch scheduler ([`serve_harness`]): diurnal rhythm, churn and
//!    network jitter included. Every arrival doubles as a labeled drift
//!    sample (the session's true location is the ground truth the
//!    published model should have predicted).
//! 3. **Re-train** — when a user's [`DriftDetector`] fires, a retrain
//!    round timer collects marked users and dispatches warm-start jobs
//!    on the work-stealing [`TrainerPool`]: fetch the published envelope
//!    (and rollback target) from the durable store, re-train on the
//!    fresh samples, re-audit through [`AuditGate::admit_with_cache`].
//!    Each job's exact simulated device cost then occupies a shared
//!    trainer resource on the event heap, so publication instants are on
//!    the same clock the queries flow on.
//! 4. **Publish / rollback** — passing candidates publish through the
//!    registry's durable hot-swap path *while queries keep flowing*; a
//!    candidate that regresses against its predecessor on the very
//!    window that triggered it is reverted with
//!    [`ShardedRegistry::rollback`]. When a round's last job lands, every
//!    *unchanged* user is re-audited from their warm logit cache — zero
//!    forward passes.
//!
//! Determinism: weights, verdicts, publication instants and the unified
//! trace are bit-identical for any trainer-pool width (per-user seeds,
//! job-order submission, width-invariant simulated durations). When no
//! drift fires the loop schedules nothing — no timer, no job, no store
//! write — and the run reduces exactly to bootstrap + serving.

use std::collections::HashMap;
use std::ops::Range;

use pelican::platform::{measure_thread, ComputeTier};
use pelican_mobility::{train_test_split, FeatureSpace, MobilityDataset, Session, SessionCursor};
use pelican_nn::{ModelCodecError, ModelEnvelope, Sample, SequenceModel};
use pelican_serve::{
    job_id, serve_harness, MobilityTraffic, MobilityTrafficConfig, Request, RollbackError,
    ServeFlow, ServeHarness, ShardedRegistry, SimServeConfig, KIND_SHIFT,
};
use pelican_sim::{
    JobReport, JobSpec, JobStatus, LinkProfile, LinkSpec, SimControl, Simulator, Stage,
    TransferPolicy, Workload,
};
use pelican_store::StoreError;
use pelican_train::{
    form_cohorts, AuditSubject, FleetTrainer, GateOutcome, JobKind, LogitCache, PipelineConfig,
    TrainJob, TrainerPool,
};

use crate::drift::{DriftConfig, DriftDetector};
use crate::report::{fnv64, LiveOutcome, ReauditStats, RetrainRecord};

/// Job-id namespace of re-train occupancy jobs (the serving flow owns
/// kinds 0–2); payloads are a monotone dispatch sequence, never reused.
const KIND_RETRAIN: u64 = 8;

/// Timer key of the retrain round — the serving flow's keys are shard
/// indices, always below the shard count.
const ROUND_KEY: u64 = u64::MAX;

/// Everything one live run needs beyond the dataset and the registry.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Bootstrap pipeline and warm re-train knobs (pool width, per-user
    /// seeds, personalization, audit gate).
    pub pipeline: PipelineConfig,
    /// Sim-driven serving knobs (scheduler, tier, optional network).
    pub serve: SimServeConfig,
    /// The per-user drift trigger.
    pub drift: DriftConfig,
    /// Virtual microseconds per trace minute (60 s/min replays the trace
    /// in real time; smaller values compress it).
    pub us_per_minute: u64,
    /// Trace minutes consumed by the bootstrap pipeline; serving (and
    /// drift accumulation) starts after this cutoff, at virtual time 0.
    pub bootstrap_minutes: u64,
    /// Trace minute the stream ends at.
    pub horizon_minutes: u64,
    /// Train/holdout split of the bootstrap window (the holdout stays
    /// held out for every later re-audit).
    pub train_fraction: f64,
    /// Delay between a first drift mark and the round that serves it —
    /// the batching window for coalescing multiple drifted users into
    /// one pool dispatch.
    pub round_interval_us: u64,
    /// The safety net: a re-trained model may underperform its
    /// predecessor's top-1 accuracy on the triggering window by at most
    /// this much before the publication is rolled back.
    pub rollback_tolerance: f64,
}

impl Default for LiveConfig {
    fn default() -> Self {
        Self {
            pipeline: PipelineConfig::default(),
            serve: SimServeConfig {
                scheduler: pelican_serve::SchedulerConfig::default(),
                tier: ComputeTier::Cloud,
                network: None,
            },
            drift: DriftConfig::default(),
            us_per_minute: 60_000_000,
            bootstrap_minutes: 7 * 24 * 60,
            horizon_minutes: 14 * 24 * 60,
            train_fraction: 0.8,
            round_interval_us: 300_000_000,
            rollback_tolerance: 0.5,
        }
    }
}

/// Why a live run could not complete.
#[derive(Debug)]
pub enum LiveError {
    /// A stored envelope failed to decode.
    Codec(ModelCodecError),
    /// The durable store failed an append or fetch.
    Store(StoreError),
    /// A safety-net rollback failed.
    Rollback(RollbackError),
    /// The registry has no durable store attached — the loop needs one
    /// for warm-start fetches and rollback targets.
    NoStore,
}

impl std::fmt::Display for LiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LiveError::Codec(e) => write!(f, "envelope decode failed: {e}"),
            LiveError::Store(e) => write!(f, "durable store failed: {e}"),
            LiveError::Rollback(e) => write!(f, "rollback failed: {e}"),
            LiveError::NoStore => write!(f, "live loop requires a store-backed registry"),
        }
    }
}

impl std::error::Error for LiveError {}

impl From<ModelCodecError> for LiveError {
    fn from(e: ModelCodecError) -> Self {
        LiveError::Codec(e)
    }
}

impl From<StoreError> for LiveError {
    fn from(e: StoreError) -> Self {
        LiveError::Store(e)
    }
}

impl From<RollbackError> for LiveError {
    fn from(e: RollbackError) -> Self {
        LiveError::Rollback(e)
    }
}

/// Fresh personalization jobs over each user's *bootstrap window* —
/// triples whose sessions all fall at or before `bootstrap_minutes` —
/// split train/holdout like [`pelican_train::cohort_jobs`]. This is the
/// cohort the quiescent live loop is equivalent to: feeding these jobs
/// to [`pelican_train::run_pipeline`] publishes bit-identical envelopes.
pub fn bootstrap_jobs(
    dataset: &MobilityDataset,
    users: Range<usize>,
    config: &LiveConfig,
) -> Vec<TrainJob> {
    users
        .filter_map(|user_id| {
            let triples: Vec<[Session; 3]> = dataset.users[user_id]
                .triples
                .iter()
                .filter(|t| t[2].absolute_entry() <= config.bootstrap_minutes)
                .cloned()
                .collect();
            let (train_triples, holdout) = train_test_split(&triples, config.train_fraction);
            let train: Vec<Sample> = train_triples.iter().map(|t| dataset.sample_of(t)).collect();
            if train.is_empty() || holdout.is_empty() {
                return None;
            }
            let history: Vec<Session> =
                train_triples.iter().flat_map(|t| t.iter().copied()).collect();
            Some(TrainJob {
                user_id,
                kind: JobKind::Fresh,
                train,
                subject: AuditSubject { history, holdout },
            })
        })
        .collect()
}

/// The post-bootstrap event stream, precomputed host-side: one serving
/// [`Request`] per session with two predecessors of context, plus — in
/// lockstep — the drift sample (context → true next location) and the
/// session itself. `requests[i]`, `samples[i]` and `sessions[i]` all
/// describe the same event.
#[derive(Debug, Clone)]
pub struct LiveStream {
    /// Query arrivals for the serving tier, ids dense from 0 in stream
    /// order.
    pub requests: Vec<Request>,
    /// The labeled drift sample each arrival reveals.
    pub samples: Vec<Sample>,
    /// The underlying mobility session of each arrival.
    pub sessions: Vec<Session>,
}

/// Builds the live event stream: every user's trace is resumed *after*
/// the bootstrap window with a [`SessionCursor`] (context seeds from the
/// window's tail), then all post-window sessions merge into one
/// chronological arrival stream via [`MobilityTraffic`].
pub fn live_stream(
    dataset: &MobilityDataset,
    users: Range<usize>,
    config: &LiveConfig,
) -> LiveStream {
    let space = &dataset.space;
    // Per-user context: the last two sessions of the bootstrap window,
    // encoded — the first post-window query already has full context.
    let mut context: HashMap<usize, Vec<Vec<f32>>> = HashMap::new();
    for user_id in users.clone() {
        let mut cursor = SessionCursor::from_trace(&dataset.users[user_id].trace);
        cursor.resume_after(config.bootstrap_minutes);
        let consumed = cursor.consumed();
        let tail = &consumed[consumed.len().saturating_sub(2)..];
        context.insert(user_id, tail.iter().map(|s| space.encode_session(s)).collect());
    }

    let traffic = MobilityTraffic::from_sessions(
        users.flat_map(|u| dataset.users[u].trace.sessions.iter().copied()),
        MobilityTrafficConfig {
            us_per_minute: config.us_per_minute,
            start_minute: config.bootstrap_minutes,
            end_minute: config.horizon_minutes,
        },
    );

    let mut stream = LiveStream { requests: Vec::new(), samples: Vec::new(), sessions: Vec::new() };
    for (arrival, session) in traffic.arrivals().iter().zip(traffic.sessions()) {
        let ctx = context.entry(session.user).or_default();
        if ctx.len() >= 2 {
            let xs: Vec<Vec<f32>> = ctx[ctx.len() - 2..].to_vec();
            let id = stream.requests.len();
            stream.requests.push(Request {
                id,
                user_id: session.user,
                arrival_us: arrival.at_us,
                xs: xs.clone(),
            });
            stream.samples.push(Sample { xs, target: space.location_of(session) });
            stream.sessions.push(*session);
        }
        ctx.push(space.encode_session(session));
        if ctx.len() > 2 {
            ctx.drain(..ctx.len() - 2);
        }
    }
    stream
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UserStatus {
    Idle,
    Marked,
    Inflight,
}

/// One enrolled user's loop state.
struct UserState {
    /// The audit subject of the user's last admitted candidate (history
    /// grows on successful re-trains; the holdout never changes).
    subject: AuditSubject,
    /// Logit cache keyed to the currently published weights.
    cache: LogitCache,
    detector: DriftDetector,
    /// Sessions observed since the last successful re-train (history
    /// growth for the next one).
    live_sessions: Vec<Session>,
    status: UserStatus,
    /// Virtual time of the pending drift mark.
    marked_us: u64,
}

/// What the round dispatched and the publication callback still needs.
struct PendingRetrain {
    user_id: usize,
    marked_us: u64,
    round_us: u64,
    /// Rollback target: the version the warm envelope was fetched as.
    prev_version: u64,
    prior_model: SequenceModel,
    published_model: SequenceModel,
    envelope: ModelEnvelope,
    gate: GateOutcome,
    cache: LogitCache,
    subject: AuditSubject,
    /// The fresh window the re-train consumed (also the rollback
    /// comparison set).
    window: Vec<Sample>,
    train_simulated_us: u64,
    audit_simulated_us: u64,
}

/// One warm job's pool result.
struct RetrainResult {
    published_model: SequenceModel,
    envelope: ModelEnvelope,
    gate: GateOutcome,
    cache: LogitCache,
    train_simulated_us: u64,
    audit_simulated_us: u64,
}

/// The composed workload: the serving flow plus the personalization loop.
struct LiveFlow<'a> {
    serve: ServeFlow<'a>,
    registry: &'a ShardedRegistry,
    space: &'a FeatureSpace,
    trainer: &'a FleetTrainer,
    config: &'a LiveConfig,
    general_envelope: ModelEnvelope,
    trainer_link: usize,
    samples: &'a [Sample],
    sessions: &'a [Session],
    users: HashMap<usize, UserState>,
    round_armed: bool,
    inflight: usize,
    next_seq: u64,
    pending: HashMap<u64, PendingRetrain>,
    round_published: Vec<usize>,
    retrains: Vec<RetrainRecord>,
    reaudit: ReauditStats,
    drift_marks: u64,
    error: Option<LiveError>,
}

impl LiveFlow<'_> {
    /// Arms the round timer if no round is pending or running.
    fn arm_round(&mut self, now: u64, sim: &mut SimControl) {
        if !self.round_armed && self.inflight == 0 {
            sim.set_timer(now + self.config.round_interval_us, ROUND_KEY);
            self.round_armed = true;
        }
    }

    /// A query reached the scheduler: its session is a fresh labeled
    /// sample for the drift trigger.
    fn observe_arrival(&mut self, id: usize, now: u64, sim: &mut SimControl) {
        if self.error.is_some() {
            return;
        }
        let session = self.sessions[id];
        let Some(state) = self.users.get_mut(&session.user) else {
            return; // never enrolled (empty bootstrap split) — served by fallback
        };
        state.live_sessions.push(session);
        state.detector.observe(self.samples[id].clone());
        if state.status != UserStatus::Idle {
            return;
        }
        let model = match self.registry.get(session.user) {
            Ok((model, _)) => model,
            Err(e) => {
                self.error = Some(e.into());
                return;
            }
        };
        let state = self.users.get_mut(&session.user).expect("checked above");
        if let Some(score) = state.detector.evaluate(&model) {
            if score.drifted {
                state.status = UserStatus::Marked;
                state.marked_us = now;
                self.drift_marks += 1;
                self.arm_round(now, sim);
            }
        }
    }

    /// The round timer fired: drain every marked user into one
    /// warm-start dispatch on the trainer pool, then put each job's
    /// simulated cost on the shared trainer resource.
    fn retrain_round(&mut self, sim: &mut SimControl) {
        self.round_armed = false;
        if self.error.is_some() {
            return;
        }
        let now = sim.now();
        let mut marked: Vec<usize> = self
            .users
            .iter()
            .filter(|(_, s)| s.status == UserStatus::Marked)
            .map(|(&u, _)| u)
            .collect();
        marked.sort_unstable();
        if marked.is_empty() {
            return;
        }
        self.round_published.clear();

        struct JobMeta {
            user_id: usize,
            marked_us: u64,
            prev_version: u64,
            prior_model: SequenceModel,
            subject: AuditSubject,
            window: Vec<Sample>,
        }
        let store = self.registry.store().expect("checked in run_live").clone();
        let mut jobs: Vec<TrainJob> = Vec::with_capacity(marked.len());
        let mut metas: Vec<JobMeta> = Vec::with_capacity(marked.len());
        for &user_id in &marked {
            let state = self.users.get_mut(&user_id).expect("marked users are enrolled");
            state.status = UserStatus::Inflight;
            let (prev_version, envelope) = match store.fetch_latest_with_version(user_id as u64) {
                Ok(Some(found)) => found,
                Ok(None) => {
                    self.error = Some(LiveError::Store(StoreError::UnknownVersion {
                        user: user_id as u64,
                        version: 0,
                    }));
                    return;
                }
                Err(e) => {
                    self.error = Some(e.into());
                    return;
                }
            };
            let prior_model = match envelope.decode() {
                Ok(m) => m,
                Err(e) => {
                    self.error = Some(e.into());
                    return;
                }
            };
            let window = state.detector.drain();
            let mut subject = state.subject.clone();
            subject.history.extend(std::mem::take(&mut state.live_sessions));
            jobs.push(TrainJob {
                user_id,
                kind: JobKind::WarmStart { envelope },
                train: window.clone(),
                subject: subject.clone(),
            });
            metas.push(JobMeta {
                user_id,
                marked_us: state.marked_us,
                prev_version,
                prior_model,
                subject,
                window,
            });
        }

        // Host-side pool dispatch (virtual clock frozen): train and audit
        // in parallel, collect in job order — weights, verdicts and the
        // measured simulated durations are bit-identical for any width.
        let trainer = self.trainer;
        let space = self.space;
        let general_envelope = &self.general_envelope;
        let pool = TrainerPool::new(trainer.config().workers);
        let audit_one = |job: &TrainJob, candidate: SequenceModel, train_us: u64| {
            let ((published, gate, cache), audit_usage) =
                measure_thread(ComputeTier::Device, || {
                    trainer.gate().admit_with_cache(candidate, space, &job.subject)
                });
            RetrainResult {
                envelope: ModelEnvelope::encode(&published),
                published_model: published,
                gate,
                cache,
                train_simulated_us: train_us,
                audit_simulated_us: audit_usage.simulated.as_micros() as u64,
            }
        };
        let results: Vec<RetrainResult> = if trainer.config().cohort > 1 {
            // Lockstep dispatch: the steal unit is a cohort of warm jobs
            // with same-size envelopes (a fixed byte width per
            // architecture). `pool.run` returns cohorts in job order and
            // each cohort's results are in job order, so flattening
            // preserves the publication order — and every per-job
            // simulated duration is bit-identical to the per-job path, so
            // the occupancy ends (the publication instants) are too.
            let cohorts = form_cohorts(&jobs, trainer.config().cohort, |job| match &job.kind {
                JobKind::WarmStart { envelope } => envelope.len() as u64,
                JobKind::Fresh => unreachable!("retrain rounds only dispatch warm jobs"),
            });
            pool.run(&cohorts, |_, range| {
                let chunk = &jobs[range.clone()];
                trainer
                    .train_candidates_lockstep(general_envelope, chunk)
                    .into_iter()
                    .zip(chunk)
                    .map(|((candidate, _fit, train_usage), job)| {
                        audit_one(job, candidate, train_usage.simulated.as_micros() as u64)
                    })
                    .collect::<Vec<RetrainResult>>()
            })
            .into_iter()
            .flatten()
            .collect()
        } else {
            pool.run(&jobs, |_, job| {
                let ((candidate, _fit), train_usage) = measure_thread(ComputeTier::Device, || {
                    trainer.train_candidate(general_envelope, job)
                });
                audit_one(job, candidate, train_usage.simulated.as_micros() as u64)
            })
        };

        // Each job's exact device cost occupies the shared trainer
        // resource; publication happens when the occupancy ends.
        for (meta, result) in metas.into_iter().zip(results) {
            let seq = self.next_seq;
            self.next_seq += 1;
            sim.submit(JobSpec {
                id: job_id(KIND_RETRAIN, seq),
                release_us: now,
                stages: vec![Stage::Transfer {
                    label: "retrain",
                    link: self.trainer_link,
                    bytes: result.train_simulated_us + result.audit_simulated_us,
                    policy: TransferPolicy::default(),
                }],
            });
            self.inflight += 1;
            self.pending.insert(
                seq,
                PendingRetrain {
                    user_id: meta.user_id,
                    marked_us: meta.marked_us,
                    round_us: now,
                    prev_version: meta.prev_version,
                    prior_model: meta.prior_model,
                    published_model: result.published_model,
                    envelope: result.envelope,
                    gate: result.gate,
                    cache: result.cache,
                    subject: meta.subject,
                    window: meta.window,
                    train_simulated_us: result.train_simulated_us,
                    audit_simulated_us: result.audit_simulated_us,
                },
            );
        }
    }

    /// A re-train's trainer occupancy ended: publish durably (queries
    /// keep flowing), apply the rollback safety net, and when the round
    /// drains, re-audit every unchanged user from their warm cache.
    fn publish_retrain(&mut self, seq: u64, now: u64, sim: &mut SimControl) {
        self.inflight -= 1;
        let Some(p) = self.pending.remove(&seq) else {
            debug_assert!(false, "one occupancy job per dispatched re-train");
            return;
        };
        if self.error.is_none() {
            if let Err(e) = self.finish_publication(p, now) {
                self.error = Some(e);
            }
        }
        if self.inflight == 0 && self.error.is_none() {
            if let Err(e) = self.reaudit_sweep() {
                self.error = Some(e);
            }
            // Users that drifted while the round was in flight start the
            // next one.
            if self.users.values().any(|s| s.status == UserStatus::Marked) {
                self.arm_round(now, sim);
            }
        }
    }

    fn finish_publication(&mut self, p: PendingRetrain, now: u64) -> Result<(), LiveError> {
        // The safety net compares predecessor and successor on the very
        // window that triggered the re-train (both deterministic model
        // decodes — temperature defenses preserve top-1).
        let prior_acc = top1_accuracy(&p.prior_model, &p.window);
        let new_acc = top1_accuracy(&p.published_model, &p.window);
        let rolled_back = new_acc + self.config.rollback_tolerance < prior_acc;

        self.registry.try_enroll_envelope(p.user_id, p.envelope.clone())?;
        let state = self.users.get_mut(&p.user_id).expect("pending users are enrolled");
        if rolled_back {
            // Revert to the fetched predecessor; the warm cache and
            // subject still describe the (restored) published weights.
            self.registry.rollback(p.user_id, p.prev_version)?;
        } else {
            state.subject = p.subject;
            state.cache = p.cache;
        }
        state.status = UserStatus::Idle;
        self.round_published.push(p.user_id);
        self.retrains.push(RetrainRecord {
            user_id: p.user_id,
            detect_us: p.marked_us,
            round_us: p.round_us,
            publish_us: now,
            train_simulated_us: p.train_simulated_us,
            audit_simulated_us: p.audit_simulated_us,
            gate: p.gate,
            rolled_back,
            envelope_bytes: p.envelope.len(),
            envelope_hash: fnv64(p.envelope.as_bytes()),
        });
        Ok(())
    }

    /// Re-audits every user whose weights did not change this round —
    /// their warm logit caches answer every oracle query, so the sweep
    /// runs the full attack suite without a single forward pass.
    fn reaudit_sweep(&mut self) -> Result<(), LiveError> {
        let mut ids: Vec<usize> = self.users.keys().copied().collect();
        ids.sort_unstable();
        for user_id in ids {
            if self.round_published.contains(&user_id) {
                continue;
            }
            let model = self.registry.get(user_id)?.0;
            let state = self.users.get_mut(&user_id).expect("iterating enrolled users");
            let (hits, misses) = (state.cache.hits, state.cache.misses);
            let eval = self.trainer.gate().audit_cached(
                &model,
                self.space,
                &state.subject,
                &mut state.cache,
            );
            self.reaudit.audits += 1;
            self.reaudit.queries += eval.queries;
            self.reaudit.hits += state.cache.hits - hits;
            self.reaudit.misses += state.cache.misses - misses;
        }
        Ok(())
    }
}

fn top1_accuracy(model: &SequenceModel, window: &[Sample]) -> f64 {
    if window.is_empty() {
        return 0.0;
    }
    let hits = window.iter().filter(|s| model.predict_top_k(&s.xs, 1).contains(&s.target)).count();
    hits as f64 / window.len() as f64
}

impl Workload for LiveFlow<'_> {
    fn on_job_end(&mut self, job: &JobReport, sim: &mut SimControl) {
        if ServeFlow::handles(job.id) {
            // An arriving query is also a fresh labeled sample; observe
            // it before the scheduler buffers it, at the same instant.
            let payload = (job.id & ((1 << KIND_SHIFT) - 1)) as usize;
            if job.id >> KIND_SHIFT == 0 && job.status == JobStatus::Completed {
                self.observe_arrival(payload, job.end_us, sim);
            }
            self.serve.on_job_end(job, sim);
        } else {
            debug_assert_eq!(job.id >> KIND_SHIFT, KIND_RETRAIN);
            let seq = job.id & ((1 << KIND_SHIFT) - 1);
            self.publish_retrain(seq, job.end_us, sim);
        }
    }

    fn on_timer(&mut self, key: u64, sim: &mut SimControl) {
        if key == ROUND_KEY {
            self.retrain_round(sim);
        } else {
            self.serve.on_timer(key, sim);
        }
    }
}

/// Runs the full streaming loop: bootstrap, then serve-and-personalize
/// over the post-bootstrap event stream. See the module docs for the
/// phases; see [`LiveOutcome`] for what comes back.
///
/// # Errors
///
/// [`LiveError::NoStore`] when the registry has no durable store;
/// otherwise codec/store/rollback failures surfaced from the loop.
///
/// # Panics
///
/// Panics on invalid configuration (zero workers, inconsistent audit
/// gate, zero `max_batch` — the same contracts as the composed parts).
pub fn run_live(
    dataset: &MobilityDataset,
    users: Range<usize>,
    registry: &ShardedRegistry,
    general: &SequenceModel,
    config: &LiveConfig,
) -> Result<LiveOutcome, LiveError> {
    if registry.store().is_none() {
        return Err(LiveError::NoStore);
    }
    let space = &dataset.space;
    let trainer = FleetTrainer::new(config.pipeline.clone());

    // Phase 1: the unmodified one-shot pipeline over the bootstrap
    // window. With no drift this is the whole story — the quiescent loop
    // publishes exactly these envelopes and nothing else.
    let jobs = bootstrap_jobs(dataset, users.clone(), config);
    let bootstrap = trainer.run(general, space, &jobs, registry);

    // Warm each user's logit cache by re-auditing the published model
    // once (host-side, no sim events, no store writes): after this,
    // every re-audit of unchanged weights pays zero forward passes.
    let mut states: HashMap<usize, UserState> = HashMap::new();
    for job in &jobs {
        let model = registry.get(job.user_id)?.0;
        let mut cache = LogitCache::new();
        trainer.gate().audit_cached(&model, space, &job.subject, &mut cache);
        states.insert(
            job.user_id,
            UserState {
                subject: job.subject.clone(),
                cache,
                detector: DriftDetector::new(config.drift),
                live_sessions: Vec::new(),
                status: UserStatus::Idle,
                marked_us: 0,
            },
        );
    }

    // Phase 2: the post-bootstrap stream through the serving harness,
    // with the personalization loop composed onto the same event heap —
    // one extra FIFO resource serializes re-train occupancies.
    let stream = live_stream(dataset, users, config);
    let ServeHarness { mut links, jobs: arrival_jobs, flow: serve } =
        serve_harness(registry, &stream.requests, &config.serve);
    let trainer_link = links.len();
    links.push(LinkSpec::fifo(LinkProfile::compute_resource("trainer")));

    let mut flow = LiveFlow {
        serve,
        registry,
        space,
        trainer: &trainer,
        config,
        general_envelope: ModelEnvelope::encode(general),
        trainer_link,
        samples: &stream.samples,
        sessions: &stream.sessions,
        users: states,
        round_armed: false,
        inflight: 0,
        next_seq: 0,
        pending: HashMap::new(),
        round_published: Vec::new(),
        retrains: Vec::new(),
        reaudit: ReauditStats::default(),
        drift_marks: 0,
        error: None,
    };
    let sim = Simulator::builder().links(links).build().run(&arrival_jobs, &mut flow);
    if let Some(e) = flow.error {
        return Err(e);
    }
    let serve_outcome = flow.serve.into_outcome(sim)?;
    let pending_at_end = flow.users.values().filter(|s| s.status != UserStatus::Idle).count();
    Ok(LiveOutcome {
        bootstrap,
        serve: serve_outcome,
        retrains: flow.retrains,
        reaudit: flow.reaudit,
        drift_marks: flow.drift_marks,
        pending_at_end,
    })
}

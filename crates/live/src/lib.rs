//! `pelican-live` — the streaming online personalization loop.
//!
//! The paper's pipeline is one-shot: enroll a cohort, personalize each
//! user once, audit, publish, serve. Real fleets never stop moving —
//! devices keep emitting sessions, models go stale, and re-training has
//! to happen *while the serving tier keeps answering queries*. This
//! crate closes that loop on the simulator's virtual clock:
//!
//! ```text
//! mobility sessions ──► MobilityTraffic ──► sim-driven batch scheduler
//!        │ (each arrival = labeled sample)          │ responses
//!        ▼                                          ▼
//!  DriftDetector ──mark──► round timer ──► TrainerPool (warm-start)
//!        ▲                                          │ admit_with_cache
//!        │          durable publish / rollback ◄────┘
//!        └────────── pelican-store ◄── ShardedRegistry
//! ```
//!
//! Three invariants make the loop auditable (all pinned by tests and the
//! `live-report` experiment):
//!
//! * **Width-invariance** — the loop's [`LiveOutcome::fingerprint`] is
//!   bit-identical for 1, 2 or 8 pool workers: per-user seeds, job-order
//!   dispatch and width-invariant simulated durations keep host
//!   scheduling out of the virtual timeline.
//! * **Zero-cost re-audits** — a re-audit of an unchanged candidate
//!   replays its warm [`pelican_train::LogitCache`] and pays **zero**
//!   forward passes ([`ReauditStats::misses`] stays 0).
//! * **Quiescent equivalence** — with a drift trigger that never fires,
//!   the run reduces exactly to today's one-shot pipeline plus serving
//!   pass: same published envelope bytes, same serving fingerprint.

pub mod drift;
pub mod flow;
pub mod report;

pub use drift::{DriftConfig, DriftDetector, DriftMetric, DriftScore};
pub use flow::{bootstrap_jobs, live_stream, run_live, LiveConfig, LiveError, LiveStream};
pub use report::{fnv64, LiveOutcome, ReauditStats, RetrainRecord};

//! Outcome of one live personalization run: the serving pass, every
//! drift-triggered re-train, and the zero-cost re-audit sweeps.

use pelican_serve::SimServeOutcome;
use pelican_tensor::nearest_rank;
use pelican_train::{GateOutcome, TrainReport};

/// One drift-triggered incremental re-train, from detection to durable
/// publication on the virtual clock.
#[derive(Debug, Clone)]
pub struct RetrainRecord {
    /// The re-trained user.
    pub user_id: usize,
    /// Virtual time the drift trigger fired.
    pub detect_us: u64,
    /// Virtual time the retrain round dispatched the job.
    pub round_us: u64,
    /// Virtual time the re-trained envelope became service-visible.
    pub publish_us: u64,
    /// Simulated device-tier training time (µs) — the job's occupancy of
    /// the trainer resource, bit-identical for any pool width.
    pub train_simulated_us: u64,
    /// Simulated device-tier audit time (µs).
    pub audit_simulated_us: u64,
    /// The audit gate's record for the warm candidate.
    pub gate: GateOutcome,
    /// Whether the safety net reverted this publication (the re-trained
    /// model regressed against its predecessor on the fresh window).
    pub rolled_back: bool,
    /// Size of the published envelope in bytes.
    pub envelope_bytes: usize,
    /// FNV-1a over the published envelope bytes (fingerprint input —
    /// version numbers are schedule-dependent, bytes are not).
    pub envelope_hash: u64,
}

impl RetrainRecord {
    /// Round dispatch → publication (µs): how long the re-train held the
    /// trainer resource plus its queueing.
    pub fn latency_us(&self) -> u64 {
        self.publish_us - self.round_us
    }

    /// Drift detection → publication (µs): how long queries kept being
    /// answered by the stale model.
    pub fn staleness_us(&self) -> u64 {
        self.publish_us - self.detect_us
    }
}

/// Aggregate counters of the post-round re-audit sweeps: every user
/// whose weights did *not* change this round is re-verified against the
/// gate's attack suite from their warm logit cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReauditStats {
    /// Re-audits run across all sweeps.
    pub audits: u64,
    /// Black-box attack queries those re-audits issued.
    pub queries: u64,
    /// Oracle queries answered from the warm caches.
    pub hits: u64,
    /// Oracle queries that ran a forward pass — zero when every
    /// re-audited candidate was truly unchanged.
    pub misses: u64,
}

/// Everything one [`crate::run_live`] call produced.
#[derive(Debug, Clone)]
pub struct LiveOutcome {
    /// The one-shot bootstrap pipeline's report (enrollment era).
    pub bootstrap: TrainReport,
    /// The serving pass: batches, completions, round trips and the
    /// unified sim trace the whole loop ran on.
    pub serve: SimServeOutcome,
    /// Every re-train, in publication order on the virtual clock.
    pub retrains: Vec<RetrainRecord>,
    /// Re-audit sweep counters.
    pub reaudit: ReauditStats,
    /// Drift-trigger firings (marks), including ones still unserved when
    /// the stream ended.
    pub drift_marks: u64,
    /// Users still marked or in-flight when the event heap drained.
    pub pending_at_end: usize,
}

const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fold(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// FNV-1a over a byte slice.
pub fn fnv64(bytes: &[u8]) -> u64 {
    fold(FNV_BASIS, bytes)
}

impl LiveOutcome {
    /// Determinism fingerprint of the whole loop: the serving trace, plus
    /// every publication's (user, virtual times, rollback flag, envelope
    /// bytes) and the re-audit counters. Registry *version numbers* are
    /// deliberately excluded — the bootstrap pipeline assigns them in
    /// host completion order — so the fingerprint is bit-identical
    /// across trainer-pool widths.
    pub fn fingerprint(&self) -> u64 {
        let mut h = fold(FNV_BASIS, &self.serve.fingerprint().to_le_bytes());
        for r in &self.retrains {
            h = fold(h, &(r.user_id as u64).to_le_bytes());
            h = fold(h, &r.detect_us.to_le_bytes());
            h = fold(h, &r.round_us.to_le_bytes());
            h = fold(h, &r.publish_us.to_le_bytes());
            h = fold(h, &[u8::from(r.rolled_back)]);
            h = fold(h, &r.envelope_hash.to_le_bytes());
            h = fold(h, &r.gate.queries.to_le_bytes());
            h = fold(h, &r.gate.cache_misses.to_le_bytes());
        }
        h = fold(h, &self.reaudit.audits.to_le_bytes());
        h = fold(h, &self.reaudit.hits.to_le_bytes());
        h = fold(h, &self.reaudit.misses.to_le_bytes());
        h = fold(h, &self.drift_marks.to_le_bytes());
        h
    }

    /// Publications the safety net reverted.
    pub fn rollbacks(&self) -> usize {
        self.retrains.iter().filter(|r| r.rolled_back).count()
    }

    /// Forward passes the re-trains' audits actually ran.
    pub fn retrain_forward_passes(&self) -> u64 {
        self.retrains.iter().map(|r| r.gate.cache_misses).sum()
    }

    /// Forward passes saved across re-train ladders and re-audit sweeps.
    pub fn forward_passes_saved(&self) -> u64 {
        self.retrains.iter().map(|r| r.gate.cached).sum::<u64>() + self.reaudit.hits
    }

    /// Median round-dispatch → publication latency (µs).
    pub fn retrain_latency_p50_us(&self) -> u64 {
        self.latency_percentile(|r| r.latency_us(), 0.50)
    }

    /// 95th-percentile round-dispatch → publication latency (µs).
    pub fn retrain_latency_p95_us(&self) -> u64 {
        self.latency_percentile(|r| r.latency_us(), 0.95)
    }

    /// Median drift-detection → publication staleness (µs).
    pub fn staleness_p50_us(&self) -> u64 {
        self.latency_percentile(|r| r.staleness_us(), 0.50)
    }

    /// 95th-percentile drift-detection → publication staleness (µs).
    pub fn staleness_p95_us(&self) -> u64 {
        self.latency_percentile(|r| r.staleness_us(), 0.95)
    }

    fn latency_percentile(&self, f: impl Fn(&RetrainRecord) -> u64, q: f64) -> u64 {
        let mut values: Vec<u64> = self.retrains.iter().map(f).collect();
        values.sort_unstable();
        nearest_rank(&values, q).unwrap_or(0)
    }

    /// Multi-line human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "live loop   {} served, {} dropped, {} batches (fingerprint {:016x})\n",
            self.serve.served.len(),
            self.serve.dropped,
            self.serve.batches.len(),
            self.fingerprint(),
        ));
        out.push_str(&format!(
            "retrains    {} published ({} rolled back, {} marks, {} pending at end)\n",
            self.retrains.len(),
            self.rollbacks(),
            self.drift_marks,
            self.pending_at_end,
        ));
        out.push_str(&format!(
            "latency     retrain p50 {}us p95 {}us, staleness p50 {}us p95 {}us\n",
            self.retrain_latency_p50_us(),
            self.retrain_latency_p95_us(),
            self.staleness_p50_us(),
            self.staleness_p95_us(),
        ));
        out.push_str(&format!(
            "re-audits   {} runs, {} queries: {} cached, {} forward passes\n",
            self.reaudit.audits, self.reaudit.queries, self.reaudit.hits, self.reaudit.misses,
        ));
        out
    }
}

//! Per-user drift detection: when does a published model go stale?
//!
//! Every served query doubles as a labeled sample — the user's *next*
//! session reveals the location the model should have predicted. The
//! [`DriftDetector`] accumulates those fresh samples and scores the
//! user's currently published model against them; when the score crosses
//! the configured threshold the live loop schedules an incremental
//! warm-start re-train. Detection is a pure function of the observed
//! sample prefix and the published weights — no wall clock, no
//! randomness — so the same seeded event stream always produces the same
//! retrain schedule, bit-identical for any trainer-pool width.

use pelican_nn::loss::softmax_cross_entropy;
use pelican_nn::{Sample, SequenceModel};

/// How staleness is scored over the fresh-sample window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DriftMetric {
    /// Mean softmax cross-entropy of the published model on the window;
    /// drift fires when it exceeds `max_loss`.
    Loss {
        /// Loss ceiling (nats).
        max_loss: f64,
    },
    /// Fraction of window samples whose true next location appears in
    /// the published model's top-k; drift fires when the agreement falls
    /// below `min_agreement`. Temperature defenses preserve logit order,
    /// so this metric sees through the deployed defense to the weights.
    TopKAgreement {
        /// The k of the top-k check.
        k: usize,
        /// Agreement floor (fraction in `[0, 1]`; above 1 the trigger
        /// fires on every evaluation — the "always retrain" stress knob).
        min_agreement: f64,
    },
}

/// Drift-trigger knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// The staleness score.
    pub metric: DriftMetric,
    /// Fresh samples a user must accumulate since their last re-train
    /// before the metric is evaluated at all (evaluation cost gate and
    /// minimum re-train batch).
    pub min_new_samples: usize,
    /// The metric scores at most this many of the newest fresh samples.
    pub window: usize,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            metric: DriftMetric::TopKAgreement { k: 1, min_agreement: 0.99 },
            min_new_samples: 4,
            window: 8,
        }
    }
}

/// One evaluation of the drift metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftScore {
    /// The metric's value over the window (loss in nats, or agreement
    /// fraction).
    pub score: f64,
    /// Whether the trigger fired.
    pub drifted: bool,
}

/// One user's drift state: the fresh samples accumulated since their
/// last re-train.
#[derive(Debug, Clone)]
pub struct DriftDetector {
    config: DriftConfig,
    fresh: Vec<Sample>,
}

impl DriftDetector {
    /// A detector with no fresh samples.
    ///
    /// # Panics
    ///
    /// Panics if the window is zero (an empty window scores nothing).
    pub fn new(config: DriftConfig) -> Self {
        assert!(config.window > 0, "drift window must be positive");
        Self { config, fresh: Vec::new() }
    }

    /// The detector's configuration.
    pub fn config(&self) -> &DriftConfig {
        &self.config
    }

    /// Records one fresh sample (a served query joined with the user's
    /// revealed next location).
    pub fn observe(&mut self, sample: Sample) {
        self.fresh.push(sample);
    }

    /// Fresh samples accumulated since the last [`DriftDetector::drain`].
    pub fn fresh_count(&self) -> usize {
        self.fresh.len()
    }

    /// Scores `model` on the newest window of fresh samples. Returns
    /// `None` while fewer than `min_new_samples` have accumulated. Pure:
    /// evaluating never consumes samples, so the score is a function of
    /// the observed prefix only — re-evaluating at any cadence yields
    /// the same answers at the same prefixes.
    pub fn evaluate(&self, model: &SequenceModel) -> Option<DriftScore> {
        if self.fresh.len() < self.config.min_new_samples.max(1) {
            return None;
        }
        let window = &self.fresh[self.fresh.len().saturating_sub(self.config.window)..];
        let (score, drifted) = match self.config.metric {
            DriftMetric::Loss { max_loss } => {
                let total: f64 = window
                    .iter()
                    .map(|s| f64::from(softmax_cross_entropy(&model.logits(&s.xs), s.target).0))
                    .sum();
                let mean = total / window.len() as f64;
                (mean, mean > max_loss)
            }
            DriftMetric::TopKAgreement { k, min_agreement } => {
                let agree = window
                    .iter()
                    .filter(|s| model.predict_top_k(&s.xs, k).contains(&s.target))
                    .count();
                let frac = agree as f64 / window.len() as f64;
                (frac, frac < min_agreement)
            }
        };
        Some(DriftScore { score, drifted })
    }

    /// Hands the accumulated fresh samples to a re-train and resets the
    /// trigger: the next evaluation waits for `min_new_samples` again.
    pub fn drain(&mut self) -> Vec<Sample> {
        std::mem::take(&mut self.fresh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model(seed: u64) -> SequenceModel {
        let mut rng = StdRng::seed_from_u64(seed);
        SequenceModel::single_lstm(4, 6, 3, 0.0, &mut rng)
    }

    fn sample(i: usize) -> Sample {
        let fill = (i % 7) as f32 * 0.13;
        Sample { xs: vec![vec![fill; 4]; 2], target: i % 3 }
    }

    #[test]
    fn evaluation_waits_for_min_new_samples_then_is_pure() {
        let config = DriftConfig { min_new_samples: 3, ..DriftConfig::default() };
        let mut det = DriftDetector::new(config);
        let m = model(1);
        det.observe(sample(0));
        det.observe(sample(1));
        assert_eq!(det.evaluate(&m), None, "below min_new_samples");
        det.observe(sample(2));
        let first = det.evaluate(&m).expect("threshold reached");
        assert_eq!(det.evaluate(&m), Some(first), "evaluation consumes nothing");
        assert_eq!(det.fresh_count(), 3);
    }

    #[test]
    fn drain_resets_the_trigger() {
        let mut det = DriftDetector::new(DriftConfig { min_new_samples: 2, ..Default::default() });
        let m = model(2);
        det.observe(sample(0));
        det.observe(sample(1));
        assert!(det.evaluate(&m).is_some());
        let drained = det.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(det.fresh_count(), 0);
        assert_eq!(det.evaluate(&m), None, "a re-train restarts the accumulation");
    }

    #[test]
    fn impossible_agreement_floor_always_fires_and_perfect_loss_never_does() {
        let m = model(3);
        let fire_all = DriftConfig {
            metric: DriftMetric::TopKAgreement { k: 1, min_agreement: 1.01 },
            min_new_samples: 1,
            window: 4,
        };
        let mut det = DriftDetector::new(fire_all);
        det.observe(sample(0));
        assert!(det.evaluate(&m).unwrap().drifted, "agreement can never reach 1.01");

        let never = DriftConfig {
            metric: DriftMetric::Loss { max_loss: f64::INFINITY },
            min_new_samples: 1,
            window: 4,
        };
        let mut det = DriftDetector::new(never);
        det.observe(sample(0));
        let score = det.evaluate(&m).unwrap();
        assert!(!score.drifted, "finite loss never exceeds an infinite ceiling");
        assert!(score.score.is_finite());
    }

    #[test]
    fn window_limits_the_scored_suffix() {
        // With window 2, only the newest two samples matter: a detector
        // fed a long prefix scores the same as one fed just the suffix.
        let m = model(4);
        let config = DriftConfig {
            metric: DriftMetric::Loss { max_loss: 0.0 },
            min_new_samples: 1,
            window: 2,
        };
        let mut long = DriftDetector::new(config);
        for i in 0..10 {
            long.observe(sample(i));
        }
        let mut short = DriftDetector::new(config);
        short.observe(sample(8));
        short.observe(sample(9));
        assert_eq!(long.evaluate(&m).unwrap().score, short.evaluate(&m).unwrap().score);
    }
}

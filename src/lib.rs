//! Workspace umbrella package for the Pelican reproduction.
//!
//! This package exists to host the *workspace-level* targets — the
//! cross-crate integration tests under `tests/` and the runnable
//! walkthroughs under `examples/` — which exercise the full pipeline
//! (cloud training → device personalization → privacy layer → inversion
//! attacks) across every crate at once. The library itself is
//! intentionally empty; depend on [`pelican`](../pelican) and friends
//! directly instead.
